//! The self-healing shard cluster: consistent-hash routing, replicated
//! per-shard state, and a seeded failure detector.
//!
//! A [`Cluster`] owns N in-process shards. Each shard owns its *own*
//! quarantine map and CRC-sealed [`BaselineCache`]; nothing is global, so
//! a shard dying can only take its own state offline. Two key spaces ride
//! one [`Ring`]:
//!
//! * **execution + quarantine** route by
//!   [`ScenarioQuery::fingerprint`](crate::query::ScenarioQuery::fingerprint),
//! * **baseline cache** routes by
//!   [`ScenarioQuery::baseline_key`](crate::query::ScenarioQuery::baseline_key),
//!
//! and every write (quarantine commit, cache insert) replicates to the
//! key's first [`ClusterConfig::replication`] ring successors. When a
//! shard dies, the next successor already holds the state — failover
//! costs routing (and at worst cache locality), never correctness.
//!
//! ## Failure detector: counted, not clocked
//!
//! Shard health is a consecutive-failure counter, **not** a wall-clock
//! heartbeat, so detector trajectories are as deterministic as the fault
//! injection driving them:
//!
//! ```text
//!            failures ≥ suspect_after      failures ≥ dead_after
//!  Healthy ───────────────────────▶ Suspect ───────────────────▶ Dead
//!     ▲                                │                           │
//!     │ success                        │ success                   │ routed-past
//!     └────────────────────────────────┘                           │ rejoin_after times
//!     ▲                                                            │
//!     └───────────── rejoin (probation as Suspect, state resynced) ┘
//! ```
//!
//! Only shard-attributed failures ([`ServeError::ShardLost`]) feed the
//! detector — a scenario's own panic says nothing about shard health.
//! A dead shard is skipped by routing; each skip ticks its rejoin
//! counter, and at zero the shard rejoins *on probation* (Suspect) after
//! resyncing its owned quarantine keys from the surviving replicas.
//!
//! ## Exactness under failover
//!
//! The batch engine reads quarantine state through
//! [`Cluster::quarantine_snapshot`], a merge over the shards that are
//! alive at batch start. Because commits go to every alive owner and a
//! rejoining shard resyncs before serving, all alive owners of a key
//! agree — so as long as fewer than `replication` owners of a key are
//! dead at once, the merged view is byte-for-byte the view a single
//! global map would give, which is what lets the storm gate
//! (`tests/storm.rs`) demand bit-identical responses to a single-shard
//! fault-free run. Lose all `replication` owners of a key at once and
//! its quarantine count degrades gracefully to zero (the scenario runs
//! again); answers remain correct either way.

use crate::cache::{BaselineCache, CacheStats, Lookup};
use crate::ring::Ring;
use crate::scenario::Baseline;
use crate::ServeError;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Cluster topology and failure-detector tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// In-process shard workers. 1 reproduces the classic single-shard
    /// server exactly.
    pub shards: u32,
    /// Owners per key (primary + successors). Writes replicate to all
    /// owners; reads fail over along the owner list. Clamped to
    /// `[1, shards]` at build time.
    pub replication: u32,
    /// Virtual nodes per shard on the ring — more points, smoother key
    /// balance.
    pub vnodes: u32,
    /// Consecutive shard-attributed failures before a shard turns
    /// Suspect.
    pub suspect_after: u32,
    /// Consecutive shard-attributed failures before a shard turns Dead
    /// and routing skips it.
    pub dead_after: u32,
    /// Times routing must skip a dead shard before it rejoins (on
    /// probation, state resynced from replicas).
    pub rejoin_after: u32,
    /// Ring placement seed. Two instances with the same seed route
    /// identically.
    pub seed: u64,
}

impl ClusterConfig {
    /// The single-shard topology: one shard owning everything. This is
    /// [`Default`], so existing single-process deployments are untouched.
    pub fn single() -> Self {
        ClusterConfig {
            shards: 1,
            replication: 1,
            vnodes: 64,
            suspect_after: 2,
            dead_after: 4,
            rejoin_after: 64,
            seed: 0xBE57_C1C5,
        }
    }

    /// A sharded topology with sensible defaults: `shards` shards,
    /// replication 2 (clamped down for a 1-shard "cluster").
    pub fn sharded(shards: u32) -> Self {
        ClusterConfig {
            shards: shards.max(1),
            replication: 2u32.min(shards.max(1)),
            ..ClusterConfig::single()
        }
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig::single()
    }
}

/// One shard's health as seen by the failure detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardHealth {
    /// Serving normally.
    Healthy,
    /// Accumulating consecutive failures (or rejoined on probation);
    /// still routed to.
    Suspect,
    /// Past [`ClusterConfig::dead_after`]; routing skips it until it
    /// rejoins.
    Dead,
}

/// Cluster counters snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClusterStats {
    /// Configured shard count.
    pub shards: u32,
    /// Configured replication factor (after clamping).
    pub replication: u32,
    /// Shards currently not Dead.
    pub alive: u32,
    /// Healthy/Suspect → Dead transitions.
    pub deaths: u64,
    /// Dead → Suspect (probation) transitions.
    pub rejoins: u64,
    /// Routing decisions that landed on a non-primary shard.
    pub failovers: u64,
    /// Shard-attributed failures fed to the detector.
    pub shard_failures: u64,
    /// Quarantine keys restored to rejoining shards from replicas.
    pub resynced_keys: u64,
}

/// One shard: its own cache and its own quarantine map.
struct Shard {
    cache: BaselineCache,
    /// fingerprint → consecutive retry-exhausted failures.
    quarantine: Mutex<BTreeMap<u64, u32>>,
}

/// Failure-detector state for one shard.
#[derive(Debug, Clone, Copy)]
struct Slot {
    health: ShardHealth,
    consecutive: u32,
    rejoin_ticks: u32,
}

#[derive(Debug, Default)]
struct Counters {
    deaths: AtomicU64,
    rejoins: AtomicU64,
    failovers: AtomicU64,
    shard_failures: AtomicU64,
    resynced_keys: AtomicU64,
}

/// N in-process shards behind one consistent-hash ring.
pub struct Cluster {
    cfg: ClusterConfig,
    ring: Ring,
    shards: Vec<Shard>,
    /// Lock order: `detector` before any shard's `quarantine` (and the
    /// quarantine locks are leaves, held one at a time) — see `resync`.
    detector: Mutex<Vec<Slot>>,
    counters: Counters,
}

impl Cluster {
    /// Build the cluster. `cache_capacity` is per shard (each shard
    /// seals its own baselines). Fails on a degenerate config.
    pub fn new(cfg: ClusterConfig, cache_capacity: usize) -> Result<Cluster, ServeError> {
        if cfg.shards == 0 {
            return Err(ServeError::Internal("cluster: shards must be ≥ 1".into()));
        }
        if cfg.suspect_after == 0 || cfg.dead_after < cfg.suspect_after {
            return Err(ServeError::Internal(
                "cluster: need 1 ≤ suspect_after ≤ dead_after".into(),
            ));
        }
        if cfg.rejoin_after == 0 {
            return Err(ServeError::Internal("cluster: rejoin_after must be ≥ 1".into()));
        }
        let cfg = ClusterConfig {
            replication: cfg.replication.clamp(1, cfg.shards),
            vnodes: cfg.vnodes.max(1),
            ..cfg
        };
        let ring = Ring::new(cfg.seed, cfg.shards, cfg.vnodes);
        let shards = (0..cfg.shards)
            .map(|_| Shard {
                cache: BaselineCache::new(cache_capacity),
                quarantine: Mutex::new(BTreeMap::new()),
            })
            .collect();
        let slot = Slot { health: ShardHealth::Healthy, consecutive: 0, rejoin_ticks: 0 };
        Ok(Cluster {
            detector: Mutex::new(vec![slot; cfg.shards as usize]),
            counters: Counters::default(),
            cfg,
            ring,
            shards,
        })
    }

    /// The (clamped) configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// The placement ring.
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// Route `key` to a shard: the first non-dead shard in ring-successor
    /// order that is not in `avoid` (the caller's per-query set of shards
    /// that already failed this query). Falls back to the first non-dead
    /// shard, then to the primary owner — the cluster always answers,
    /// even with every shard storming; total loss of the owner set only
    /// costs cache locality.
    ///
    /// Walking past a dead shard ticks its rejoin counter; at zero the
    /// shard resyncs from replicas and rejoins on probation.
    pub fn route(&self, key: u64, avoid: &[u32]) -> u32 {
        let order = self.ring.successor_order(key);
        let mut det = self.detector.lock();
        let mut chosen = None;
        for &s in &order {
            if det[s as usize].health == ShardHealth::Dead {
                self.tick_rejoin(&mut det, s);
            }
            if det[s as usize].health != ShardHealth::Dead && !avoid.contains(&s) {
                chosen = Some(s);
                break;
            }
        }
        let chosen = chosen
            .or_else(|| {
                order.iter().copied().find(|&s| det[s as usize].health != ShardHealth::Dead)
            })
            .unwrap_or(order[0]);
        if chosen != order[0] {
            self.counters.failovers.fetch_add(1, Ordering::Relaxed);
        }
        chosen
    }

    /// Record a shard-attributed failure ([`ServeError::ShardLost`]) and
    /// advance the detector.
    pub fn record_failure(&self, shard: u32) {
        self.counters.shard_failures.fetch_add(1, Ordering::Relaxed);
        let mut det = self.detector.lock();
        let slot = &mut det[shard as usize];
        if slot.health == ShardHealth::Dead {
            return;
        }
        slot.consecutive = slot.consecutive.saturating_add(1);
        if slot.consecutive >= self.cfg.dead_after {
            slot.health = ShardHealth::Dead;
            slot.rejoin_ticks = self.cfg.rejoin_after;
            self.counters.deaths.fetch_add(1, Ordering::Relaxed);
        } else if slot.consecutive >= self.cfg.suspect_after {
            slot.health = ShardHealth::Suspect;
        }
    }

    /// Record a successful attempt on `shard`: resets the consecutive
    /// counter and clears probation. Never resurrects a Dead shard —
    /// only the rejoin path does that, after a resync.
    pub fn record_success(&self, shard: u32) {
        let mut det = self.detector.lock();
        let slot = &mut det[shard as usize];
        if slot.health != ShardHealth::Dead {
            slot.consecutive = 0;
            slot.health = ShardHealth::Healthy;
        }
    }

    /// One routing walk skipped dead `shard`; count it toward rejoin.
    fn tick_rejoin(&self, det: &mut [Slot], shard: u32) {
        let slot = &mut det[shard as usize];
        slot.rejoin_ticks = slot.rejoin_ticks.saturating_sub(1);
        if slot.rejoin_ticks == 0 {
            self.resync(det, shard);
            let slot = &mut det[shard as usize];
            slot.health = ShardHealth::Suspect;
            slot.consecutive = 0;
            self.counters.rejoins.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Rebuild a rejoining shard's quarantine map from the surviving
    /// replicas: adopt the max count per owned key, drop keys no replica
    /// holds (a success elsewhere removed them while this shard was
    /// down). Called with the detector lock held; quarantine locks are
    /// taken one at a time underneath it (lock-order comment on the
    /// field).
    fn resync(&self, det: &[Slot], shard: u32) {
        let mut fresh: BTreeMap<u64, u32> = BTreeMap::new();
        for (p, peer) in self.shards.iter().enumerate() {
            if p == shard as usize || det[p].health == ShardHealth::Dead {
                continue;
            }
            for (&k, &v) in peer.quarantine.lock().iter() {
                if self.ring.owners(k, self.cfg.replication).contains(&shard) {
                    let e = fresh.entry(k).or_insert(0);
                    *e = (*e).max(v);
                }
            }
        }
        self.counters.resynced_keys.fetch_add(fresh.len() as u64, Ordering::Relaxed);
        *self.shards[shard as usize].quarantine.lock() = fresh;
    }

    /// Shards currently not Dead, as a mask.
    fn alive_mask(&self) -> Vec<bool> {
        self.detector.lock().iter().map(|s| s.health != ShardHealth::Dead).collect()
    }

    /// Each shard's current health, for tests and diagnostics.
    pub fn health(&self) -> Vec<ShardHealth> {
        self.detector.lock().iter().map(|s| s.health).collect()
    }

    /// Merged quarantine view over the shards alive right now — the view
    /// the batch engine snapshots at batch start. Alive owners agree on
    /// every key (module docs), so the max-merge equals what a single
    /// global map would hold.
    pub fn quarantine_snapshot(&self) -> BTreeMap<u64, u32> {
        let alive = self.alive_mask();
        let mut out = BTreeMap::new();
        for (s, shard) in self.shards.iter().enumerate() {
            if !alive[s] {
                continue;
            }
            for (&k, &v) in shard.quarantine.lock().iter() {
                let e = out.entry(k).or_insert(0);
                *e = (*e).max(v);
            }
        }
        out
    }

    /// Commit one query's post-batch quarantine delta to every alive
    /// owner of its fingerprint: exhausted failures increment, successes
    /// clear.
    pub fn commit_quarantine(&self, fp: u64, exhausted: bool) {
        let alive = self.alive_mask();
        for o in self.ring.owners(fp, self.cfg.replication) {
            if !alive[o as usize] {
                continue;
            }
            let mut g = self.shards[o as usize].quarantine.lock();
            if exhausted {
                *g.entry(fp).or_insert(0) += 1;
            } else {
                g.remove(&fp);
            }
        }
    }

    /// The shard a cache probe for `key` reads from: its first alive
    /// owner (primary when all owners are dead — a dead shard's cache is
    /// stale at worst, and CRC + recompute make stale entries harmless).
    fn cache_shard(&self, key: u64) -> u32 {
        let alive = self.alive_mask();
        let owners = self.ring.owners(key, self.cfg.replication);
        owners.iter().copied().find(|&o| alive[o as usize]).unwrap_or(owners[0])
    }

    /// Probe the cache for `key` on its first alive owner.
    pub fn cache_lookup(&self, key: u64) -> Lookup {
        self.shards[self.cache_shard(key) as usize].cache.lookup(key)
    }

    /// Insert a sealed baseline under `key` on every alive owner (the
    /// primary as a last resort), so the next successor already holds it
    /// when the primary dies.
    pub fn cache_insert(&self, key: u64, baseline: &Baseline) {
        let alive = self.alive_mask();
        let owners = self.ring.owners(key, self.cfg.replication);
        let mut inserted = false;
        for &o in &owners {
            if alive[o as usize] {
                self.shards[o as usize].cache.insert(key, baseline);
                inserted = true;
            }
        }
        if !inserted {
            self.shards[owners[0] as usize].cache.insert(key, baseline);
        }
    }

    /// Flip one bit of the sealed entry under `key` on the shard a probe
    /// would read from (chaos injection).
    pub fn corrupt_cache(&self, key: u64, bit: u64) {
        self.shards[self.cache_shard(key) as usize].cache.corrupt_entry(key, bit);
    }

    /// Cache counters summed across shards.
    pub fn cache_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            let s = shard.cache.stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.corruptions += s.corruptions;
            total.evictions += s.evictions;
            total.len += s.len;
        }
        total
    }

    /// Cluster counters snapshot.
    pub fn stats(&self) -> ClusterStats {
        let alive = self.alive_mask().iter().filter(|&&a| a).count() as u32;
        ClusterStats {
            shards: self.cfg.shards,
            replication: self.cfg.replication,
            alive,
            deaths: self.counters.deaths.load(Ordering::Relaxed),
            rejoins: self.counters.rejoins.load(Ordering::Relaxed),
            failovers: self.counters.failovers.load(Ordering::Relaxed),
            shard_failures: self.counters.shard_failures.load(Ordering::Relaxed),
            resynced_keys: self.counters.resynced_keys.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(shards: u32, replication: u32) -> Cluster {
        let cfg = ClusterConfig {
            shards,
            replication,
            dead_after: 3,
            rejoin_after: 4,
            ..ClusterConfig::single()
        };
        Cluster::new(cfg, 8).expect("valid config")
    }

    fn kill(c: &Cluster, shard: u32) {
        for _ in 0..c.config().dead_after {
            c.record_failure(shard);
        }
        assert_eq!(c.health()[shard as usize], ShardHealth::Dead);
    }

    #[test]
    fn detector_walks_healthy_suspect_dead_rejoin() {
        let c = cluster(4, 2);
        assert_eq!(c.health(), vec![ShardHealth::Healthy; 4]);
        c.record_failure(1);
        c.record_failure(1);
        assert_eq!(c.health()[1], ShardHealth::Suspect);
        c.record_success(1);
        assert_eq!(c.health()[1], ShardHealth::Healthy, "success clears suspicion");
        kill(&c, 1);
        c.record_success(1);
        assert_eq!(c.health()[1], ShardHealth::Dead, "success never resurrects");
        // Routing any key owned by shard 1 ticks its rejoin counter; the
        // final tick completes the rejoin mid-walk, so that route may
        // land on the freshly rejoined shard again.
        let key = (0..).find(|&k| c.ring().primary(k) == 1).expect("shard 1 owns keys");
        for _ in 0..c.config().rejoin_after - 1 {
            let s = c.route(key, &[]);
            assert_ne!(s, 1, "dead shards are skipped before rejoin completes");
        }
        c.route(key, &[]);
        assert_eq!(c.health()[1], ShardHealth::Suspect, "rejoined on probation");
        let s = c.stats();
        assert_eq!((s.deaths, s.rejoins), (1, 1));
        assert!(s.failovers >= u64::from(c.config().rejoin_after) - 1);
    }

    #[test]
    fn route_fails_over_to_successor_and_back() {
        let c = cluster(4, 2);
        let key = 0xFEED_F00D;
        let order = c.ring().successor_order(key);
        assert_eq!(c.route(key, &[]), order[0]);
        kill(&c, order[0]);
        assert_eq!(c.route(key, &[]), order[1], "next successor absorbs the keys");
        // The avoid set steers around shards that already failed a query.
        assert_eq!(c.route(key, &[order[1]]), order[2]);
    }

    #[test]
    fn quarantine_commits_replicate_and_survive_owner_death() {
        let c = cluster(4, 2);
        let fp = 0xBAD_C0DE;
        c.commit_quarantine(fp, true);
        c.commit_quarantine(fp, true);
        assert_eq!(c.quarantine_snapshot().get(&fp), Some(&2));
        // Kill the primary owner: the replica still answers.
        let owners = c.ring().owners(fp, 2);
        kill(&c, owners[0]);
        assert_eq!(c.quarantine_snapshot().get(&fp), Some(&2));
        // A success clears the key on the alive owners.
        c.commit_quarantine(fp, false);
        assert_eq!(c.quarantine_snapshot().get(&fp), None);
    }

    #[test]
    fn rejoined_shard_resyncs_owned_keys_from_replicas() {
        let c = cluster(4, 2);
        let fp = (0..).find(|&k| c.ring().primary(k) == 2).expect("shard 2 owns keys");
        c.commit_quarantine(fp, true);
        kill(&c, 2);
        // While shard 2 is down its replica takes two more strikes and
        // the dead map goes stale.
        c.commit_quarantine(fp, true);
        c.commit_quarantine(fp, true);
        for _ in 0..c.config().rejoin_after {
            c.route(fp, &[]);
        }
        assert_eq!(c.health()[2], ShardHealth::Suspect);
        assert_eq!(
            c.quarantine_snapshot().get(&fp),
            Some(&3),
            "rejoined shard must adopt the replicas' counts, not its stale own"
        );
        assert!(c.stats().resynced_keys >= 1);
    }

    #[test]
    fn single_shard_cluster_is_the_degenerate_case() {
        let c = cluster(1, 1);
        assert_eq!(c.route(42, &[]), 0);
        c.commit_quarantine(7, true);
        assert_eq!(c.quarantine_snapshot().get(&7), Some(&1));
        assert_eq!(c.stats().failovers, 0);
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        assert!(Cluster::new(ClusterConfig { shards: 0, ..ClusterConfig::single() }, 8).is_err());
        assert!(Cluster::new(
            ClusterConfig { suspect_after: 3, dead_after: 2, ..ClusterConfig::single() },
            8
        )
        .is_err());
        assert!(
            Cluster::new(ClusterConfig { rejoin_after: 0, ..ClusterConfig::single() }, 8).is_err()
        );
        // Over-replication clamps instead of failing.
        let c = Cluster::new(ClusterConfig { shards: 2, replication: 9, ..ClusterConfig::single() }, 8)
            .expect("clamped");
        assert_eq!(c.config().replication, 2);
    }
}
