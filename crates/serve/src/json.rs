//! Hand-rolled JSON value, parser and serializer.
//!
//! The offline stub registry rules out `serde_json` for runtime use (it
//! is stubbed in offline builds — see `xtask/src/bench.rs`), so the wire
//! protocol carries its own minimal JSON implementation. Two deliberate
//! restrictions keep it deterministic and canonical:
//!
//! * objects are stored in a [`BTreeMap`], so serialization order is the
//!   sorted key order regardless of the order keys arrived in — the
//!   canonicalization half of the cache-key story;
//! * unsigned integers are kept exact ([`Value::Int`] holds a `u64`), so
//!   64-bit seeds and query ids survive a round-trip bit-for-bit.
//!
//! Non-finite floats serialize as `null` (JSON has no NaN/inf) rather
//! than panicking; the server never produces them from a finished run.

use std::collections::BTreeMap;

/// Maximum nesting depth the parser will follow before rejecting the
/// document. Requests are flat objects; 32 is generous.
const MAX_DEPTH: u32 = 32;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer written without fraction or exponent.
    Int(u64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; keys sorted (and deduplicated, last wins) by `BTreeMap`.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value as an unsigned integer, when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(n) => Some(n),
            Value::Num(x) if x >= 0.0 && x.fract() == 0.0 && x <= u64::MAX as f64 => {
                Some(x as u64)
            }
            _ => None,
        }
    }

    /// The value as a float.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(n) => Some(n as f64),
            Value::Num(x) => Some(x),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Serialize to a compact JSON string (no whitespace, sorted keys).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(n) => {
                use std::fmt::Write as _;
                // lint: allow(error-swallow) -- fmt::Write to String is infallible
                let _ = write!(out, "{n}");
            }
            Value::Num(x) => {
                use std::fmt::Write as _;
                if x.is_finite() {
                    // Rust's shortest-roundtrip Display: the same f64
                    // always renders the same bytes, so "bit-identical
                    // responses" is a string comparison.
                    // lint: allow(error-swallow) -- fmt::Write to String is infallible
                    let _ = write!(out, "{x}");
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        // Keep a float marker so `1.0` does not re-parse
                        // as an integer and change a canonical hash.
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => render_str(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Value::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_str(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                // lint: allow(error-swallow) -- fmt::Write to String is infallible
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Why a document failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { at: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, lit: &str, msg: &'static str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn value(&mut self, depth: u32) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.eat("null", "expected null").map(|()| Value::Null),
            Some(b't') => self.eat("true", "expected true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat("false", "expected false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self, depth: u32) -> Result<Value, JsonError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: u32) -> Result<Value, JsonError> {
        self.pos += 1; // '{'
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key in object"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected ':' after object key"));
            }
            self.pos += 1;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs are rejected rather than
                            // decoded; the protocol is ASCII in practice.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                0x00..=0x1F => return Err(self.err("raw control character in string")),
                _ => {
                    // Copy one UTF-8 scalar (input is a &str, so this is
                    // always a valid boundary walk).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len()
                        && (self.bytes[self.pos] & 0xC0) == 0x80
                    {
                        self.pos += 1;
                    }
                    if let Ok(s) = std::str::from_utf8(&self.bytes[start..self.pos]) {
                        out.push_str(s);
                    } else {
                        return Err(self.err("invalid UTF-8 in string"));
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err("non-hex digit in \\u escape")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut saw_frac_or_exp = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    saw_frac_or_exp = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        // A &str slice over ASCII bytes is always valid UTF-8.
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-ASCII in number"))?;
        if !saw_frac_or_exp && !text.starts_with('-') {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Int(n));
            }
        }
        match text.parse::<f64>() {
            Ok(x) if x.is_finite() => Ok(Value::Num(x)),
            _ => Err(self.err("invalid number")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_flat_object() {
        let v = parse(r#"{"b": 2, "a": [1, 2.5, "x\n", true, null]}"#).expect("parses");
        assert_eq!(v.render(), r#"{"a":[1,2.5,"x\n",true,null],"b":2}"#);
    }

    #[test]
    fn integers_stay_exact() {
        let v = parse("18446744073709551615").expect("parses");
        assert_eq!(v, Value::Int(u64::MAX));
        assert_eq!(v.render(), "18446744073709551615");
    }

    #[test]
    fn floats_keep_marker() {
        let v = parse("{\"x\": 3.0}").expect("parses");
        assert_eq!(v.render(), "{\"x\":3.0}");
    }

    #[test]
    fn key_order_is_canonical() {
        let a = parse(r#"{"x":1,"y":2}"#).expect("parses");
        let b = parse(r#"{"y":2,"x":1}"#).expect("parses");
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,", "\"abc", "{\"a\" 1}", "nul", "1 2", "1e999"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn depth_is_bounded() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }
}
