//! # besst-serve — the hardened scenario server
//!
//! Wraps the DSE/overlay machinery (`besst_core`) in a persistent
//! service: batches of `(machine, app, FT config, seed)` queries arrive
//! as JSONL over stdin/stdout or a plain [`std::net::TcpListener`]
//! (hand-rolled protocol per the offline stub registry — no
//! tokio/hyper/serde_json), are dispatched to a rayon worker pool, and
//! produce exactly one response line per query.
//!
//! The paper's premise — model faults as first-class events and design
//! recovery around them — is applied to the serving layer itself, in
//! four robustness layers (see `docs/SCENARIO_SERVER.md`):
//!
//! 1. **Isolation** ([`server`]) — every query attempt runs under
//!    `catch_unwind`; a panicking scenario produces a typed
//!    [`ServeError`] response instead of killing the server, and a
//!    quarantine fingerprints repeat offenders and fast-fails them.
//! 2. **Deadlines & retries** ([`server`]) — per-query soft deadlines
//!    and a per-batch budget gate *retries and admission to run*, never
//!    a completed answer; transient failures retry with exponential
//!    backoff and deterministic seeded jitter.
//! 3. **Overload control** ([`server`]) — a bounded admission queue;
//!    excess queries are shed with [`ServeError::Overloaded`] responses
//!    carrying retry-after hints, so throughput stays flat past
//!    saturation.
//! 4. **Self-fault-injection** ([`chaos`]) — the `serve` buggify preset
//!    ([`besst_des::buggify::FaultConfig::serve`]) drops/duplicates
//!    connections, delays and crashes workers, and corrupts cache
//!    entries; the chaos harness (`tests/chaos.rs`) proves every
//!    accepted query still gets exactly one response, bit-identical to
//!    a fault-free run.
//! 5. **Sharded failover** ([`cluster`], [`ring`]) — queries route over
//!    a deterministic consistent-hash ring to N in-process shards, each
//!    owning its own quarantine map and baseline cache; quarantine
//!    commits and cache inserts replicate to the next ring successors,
//!    a consecutive-failure detector walks shards through
//!    healthy → suspect → dead → rejoined, and the `storm` preset
//!    ([`besst_des::buggify::FaultConfig::storm`]) proves whole-shard
//!    crash storms cost latency, never answers (`tests/storm.rs`).
//!
//! The [`cache`] module holds the content-hash baseline-timeline cache:
//! CRC-32C-sealed entries keyed by [`query::ScenarioQuery::baseline_key`],
//! where corruption or eviction costs latency, never correctness.

#![warn(missing_docs)]

pub mod cache;
pub mod chaos;
pub mod cluster;
pub mod json;
pub mod net;
pub mod protocol;
pub mod query;
pub mod ring;
pub mod scenario;
pub mod server;

pub use cache::{BaselineCache, CacheStats};
pub use chaos::{Chaos, ChaosStats};
pub use cluster::{Cluster, ClusterConfig, ClusterStats, ShardHealth};
pub use query::{AppKind, MachineKind, QueryMode, ScenarioQuery};
pub use ring::Ring;
pub use scenario::{Baseline, QueryAnswer};
pub use server::{Outcome, Response, ServeConfig, Server, ServerStats};

/// Typed failure taxonomy for one query. Every variant renders as an
/// `"status":"error"` response line with a stable `kind` — the server
/// never answers a query with silence or a crash.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The request line was malformed or out of bounds; permanent.
    BadRequest(String),
    /// The simulator rejected the scenario with a typed error
    /// (`SimError` / `OnlineError`); permanent.
    Sim(String),
    /// The worker panicked on every allowed attempt. The panic message
    /// is carried here for logs/stats but deliberately *not* rendered on
    /// the wire (response lines stay bit-identical whether the panic was
    /// the scenario's own or an injected chaos crash).
    Panic(String),
    /// The query's fingerprint was quarantined after repeated
    /// retry-exhausted failures; fast-failed without running.
    Quarantined {
        /// Exhausted failures recorded against the fingerprint.
        failures: u32,
    },
    /// The soft deadline or batch budget expired before an attempt
    /// could (re)run; the query was not silently stalled.
    Timeout {
        /// The effective per-query deadline that expired, ms.
        deadline_ms: u64,
    },
    /// Load shedding: the batch exceeded the admission queue bound.
    Overloaded {
        /// Suggested client backoff before resubmitting, ms. Capped at
        /// [`server::RETRY_AFTER_CAP_MS`] no matter how deep the
        /// overflow.
        retry_after_ms: u64,
    },
    /// The shard an attempt was routed to was storming (injected
    /// [`besst_des::buggify::sites::SHARD_CRASH`]); the cluster reroutes
    /// the retry to the next ring successor. The shard index is carried
    /// for the failure detector and logs but deliberately *not* rendered
    /// on the wire (routing is operational detail; response lines stay
    /// bit-identical to a fault-free run).
    ShardLost {
        /// Index of the shard that failed the attempt.
        shard: u32,
    },
    /// The server itself failed to set up (worker pool construction).
    Internal(String),
}

impl ServeError {
    /// Stable wire name for the `kind` field.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::BadRequest(_) => "bad_request",
            ServeError::Sim(_) => "sim",
            ServeError::Panic(_) => "panic",
            ServeError::Quarantined { .. } => "quarantined",
            ServeError::Timeout { .. } => "timeout",
            ServeError::Overloaded { .. } => "overloaded",
            ServeError::ShardLost { .. } => "shard_lost",
            ServeError::Internal(_) => "internal",
        }
    }

    /// Whether a retry of the same attempt could plausibly succeed.
    /// Panics are transient (an injected chaos crash redraws its
    /// keyed-hash decision on the next attempt); a lost shard is
    /// transient because the cluster reroutes the retry to the next ring
    /// successor.
    pub fn transient(&self) -> bool {
        matches!(self, ServeError::Panic(_) | ServeError::ShardLost { .. })
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServeError::Sim(m) => write!(f, "simulator rejected the scenario: {m}"),
            ServeError::Panic(m) => write!(f, "worker panicked: {m}"),
            ServeError::Quarantined { failures } => {
                write!(f, "quarantined after {failures} exhausted failures")
            }
            ServeError::Timeout { deadline_ms } => {
                write!(f, "deadline of {deadline_ms} ms expired")
            }
            ServeError::Overloaded { retry_after_ms } => {
                write!(f, "overloaded; retry after {retry_after_ms} ms")
            }
            ServeError::ShardLost { shard } => {
                write!(f, "shard {shard} lost the attempt; rerouting")
            }
            ServeError::Internal(m) => write!(f, "internal server error: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}
