//! Transport frontends: JSONL batches over any `Read`/`Write` pair
//! (stdin/stdout in the binary) and over a plain [`TcpListener`].
//!
//! Framing: one JSON object per line (LF or CRLF terminated — a
//! trailing `\r` is stripped); a blank line (or EOF) closes the current
//! batch, the server answers it — one response line per query, then a
//! blank line — and the next batch may begin on the same connection. A
//! batch may open with a v2 header line selecting the response order
//! (see [`crate::protocol`]): `ordered` (default) buffers and emits
//! responses strictly in input order; `stream` flushes them in
//! completion order, each tagged with the `idx` of the query line it
//! answers. Input reads are *bounded* ([`MAX_LINE_BYTES`],
//! [`MAX_BATCH_LINES`]): a client that streams an endless line or batch
//! gets a typed error, not an unbounded buffer (enforced by besst-lint
//! rule D6 for this crate). The byte cap applies to the raw line before
//! `\r` stripping.
//!
//! When the server runs with chaos, the connection layer injects its
//! share of the `serve` preset: query lines may be duplicated on read
//! (the duplicate is a real submission, answered identically) and
//! response lines may be dropped on write (the client sees a missing
//! line and resubmits). Both are counted in
//! [`crate::chaos::ChaosStats`].

use crate::protocol::{parse_header, parse_request, render_response_idx, BatchMode};
use crate::query::ScenarioQuery;
use crate::server::{Outcome, Response, Server};
use crate::ServeError;
use parking_lot::Mutex;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};

/// Longest request line accepted, bytes.
pub const MAX_LINE_BYTES: usize = 64 * 1024;
/// Most lines accepted in one batch. Beyond this the batch is closed
/// and answered; admission control then sheds the overflow explicitly.
pub const MAX_BATCH_LINES: usize = 65_536;

/// Read one `\n`-terminated line without unbounded buffering: at most
/// `cap` bytes are accumulated, the rest of an oversized line is
/// discarded and reported.
///
/// Returns `Ok(None)` at EOF, `Ok(Some((line, truncated)))` otherwise.
fn read_bounded_line<R: BufRead>(
    reader: &mut R,
    cap: usize,
) -> std::io::Result<Option<(String, bool)>> {
    // CRLF clients get the same framing as LF clients: strip one
    // trailing carriage return after the newline split.
    fn finish(buf: &[u8], truncated: bool) -> (String, bool) {
        let buf = buf.strip_suffix(b"\r").unwrap_or(buf);
        (String::from_utf8_lossy(buf).into_owned(), truncated)
    }
    let mut buf: Vec<u8> = Vec::new();
    let mut truncated = false;
    let mut saw_any = false;
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            // EOF: a final unterminated line still counts.
            return Ok(if saw_any { Some(finish(&buf, truncated)) } else { None });
        }
        saw_any = true;
        if let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
            if !truncated {
                let take = pos.min(cap.saturating_sub(buf.len()));
                buf.extend_from_slice(&chunk[..take]);
                truncated = take < pos;
            }
            reader.consume(pos + 1);
            return Ok(Some(finish(&buf, truncated)));
        }
        if !truncated {
            let take = chunk.len().min(cap.saturating_sub(buf.len()));
            buf.extend_from_slice(&chunk[..take]);
            truncated = take < chunk.len();
        }
        let len = chunk.len();
        reader.consume(len);
    }
}

/// Where one response line came from: the 0-based query-line position it
/// answers (the batch header does not count) and which copy it is —
/// `copy` is 1 for the second answer of a chaos-duplicated submission,
/// else 0. Drop-chaos decisions key on `(pos, copy)` so they stay pure
/// functions of the seed regardless of completion order.
#[derive(Debug, Clone, Copy)]
struct Origin {
    pos: u64,
    copy: u64,
}

impl Origin {
    /// Stable sequence key for connection-level chaos decisions.
    fn seq(self) -> u64 {
        // MAX_BATCH_LINES < 2^32, so pos and copy never collide.
        self.pos | (self.copy << 32)
    }
}

/// One parsed batch: the response mode, queries to run, and pre-built
/// responses for malformed lines, each remembering its origin so output
/// can interleave in input order (ordered mode) or be tagged with `idx`
/// (stream mode).
struct Batch {
    mode: BatchMode,
    /// The rejection for a malformed header line, emitted before any
    /// other response (the batch itself falls back to ordered mode).
    header_reject: Option<Response>,
    /// Whether a header line (valid or not) was consumed — a header-only
    /// batch is not EOF.
    saw_header: bool,
    queries: Vec<(Origin, ScenarioQuery)>,
    rejects: Vec<(Origin, Response)>,
    /// Query lines consumed (valid + malformed, excluding the header),
    /// to notice an empty batch.
    lines: usize,
}

/// Read one batch (until blank line or EOF). `conn` keys connection-level
/// chaos decisions.
fn read_batch<R: BufRead>(
    reader: &mut R,
    server: &Server,
    conn: u64,
) -> std::io::Result<Batch> {
    let mut batch = Batch {
        mode: BatchMode::Ordered,
        header_reject: None,
        saw_header: false,
        queries: Vec::new(),
        rejects: Vec::new(),
        lines: 0,
    };
    let chaos = server.config().chaos.clone();
    while batch.lines < MAX_BATCH_LINES {
        let Some((line, truncated)) = read_bounded_line(reader, MAX_LINE_BYTES)? else {
            break; // EOF
        };
        if line.trim().is_empty() {
            if batch.lines == 0 && !batch.saw_header {
                continue; // leading blank lines are framing noise
            }
            break; // batch delimiter
        }
        // Only the first line of a batch may be a header; later
        // header-shaped lines fall through to parse_request and are
        // rejected like any other id-less object.
        if batch.lines == 0 && !batch.saw_header && !truncated {
            match parse_header(&line) {
                Some(Ok(mode)) => {
                    batch.mode = mode;
                    batch.saw_header = true;
                    continue;
                }
                Some(Err(resp)) => {
                    batch.header_reject = Some(resp);
                    batch.saw_header = true;
                    continue;
                }
                None => {}
            }
        }
        let pos = batch.lines as u64;
        batch.lines += 1;
        if truncated {
            batch.rejects.push((
                Origin { pos, copy: 0 },
                Response {
                    id: 0,
                    outcome: Outcome::Err(ServeError::BadRequest(format!(
                        "line exceeds {MAX_LINE_BYTES} bytes"
                    ))),
                },
            ));
            continue;
        }
        match parse_request(&line) {
            Ok(q) => {
                let dup = chaos.as_ref().is_some_and(|c| c.duplicates_query(conn, pos));
                batch.queries.push((Origin { pos, copy: 0 }, q.clone()));
                if dup {
                    // A duplicated submission is a real second query; the
                    // server answers both, identically. It shares the
                    // original's idx — it answers the same query line.
                    batch.queries.push((Origin { pos, copy: 1 }, q));
                }
            }
            Err(resp) => batch.rejects.push((Origin { pos, copy: 0 }, resp)),
        }
    }
    Ok(batch)
}

/// Serve batches from `reader` to `writer` until EOF. Returns the number
/// of batches served.
pub fn serve_lines<R: Read, W: Write + Send>(
    server: &Server,
    reader: R,
    writer: W,
    conn: u64,
) -> std::io::Result<u64> {
    let mut reader = BufReader::new(reader);
    let writer = Mutex::new(writer);
    let chaos = server.config().chaos.clone();
    let mut batches = 0u64;
    loop {
        let batch = read_batch(&mut reader, server, conn)?;
        if batch.lines == 0 && !batch.saw_header {
            break; // EOF with nothing pending
        }
        batches += 1;
        let io_error: Mutex<Option<std::io::Error>> = Mutex::new(None);
        // A malformed header's rejection leads the batch and never
        // carries an idx (the batch fell back to ordered mode).
        if let Some(resp) = &batch.header_reject {
            write_response(&writer, resp, None, chaos.as_ref(), conn, 1 << 48, &io_error);
        }
        let (origins, queries): (Vec<Origin>, Vec<ScenarioQuery>) =
            batch.queries.into_iter().unzip();
        match batch.mode {
            BatchMode::Stream => {
                // Rejections are known before the batch runs; stream
                // them out first, idx-tagged like everything else.
                for (origin, resp) in &batch.rejects {
                    write_response(
                        &writer,
                        resp,
                        Some(origin.pos),
                        chaos.as_ref(),
                        conn,
                        origin.seq(),
                        &io_error,
                    );
                }
                server.handle_batch_indexed(&queries, &|idx, resp| {
                    let origin = origins[idx];
                    write_response(
                        &writer,
                        &resp,
                        Some(origin.pos),
                        chaos.as_ref(),
                        conn,
                        origin.seq(),
                        &io_error,
                    );
                });
            }
            BatchMode::Ordered => {
                // Buffer completion-order results, then emit strictly in
                // input order (rejections interleaved at their line
                // positions, a duplicate right after its original).
                let slots: Vec<Mutex<Option<Response>>> =
                    queries.iter().map(|_| Mutex::new(None)).collect();
                server.handle_batch_indexed(&queries, &|idx, resp| {
                    *slots[idx].lock() = Some(resp);
                });
                let mut out: Vec<(Origin, Response)> = batch.rejects;
                for (slot, origin) in slots.into_iter().zip(&origins) {
                    if let Some(resp) = slot.into_inner() {
                        out.push((*origin, resp));
                    }
                }
                out.sort_by_key(|(origin, _)| (origin.pos, origin.copy));
                for (origin, resp) in &out {
                    write_response(
                        &writer,
                        resp,
                        None,
                        chaos.as_ref(),
                        conn,
                        origin.seq(),
                        &io_error,
                    );
                }
            }
        }
        if let Some(e) = io_error.into_inner() {
            return Err(e);
        }
        let mut w = writer.lock();
        w.write_all(b"\n")?;
        w.flush()?;
    }
    Ok(batches)
}

#[allow(clippy::too_many_arguments)]
fn write_response<W: Write>(
    writer: &Mutex<W>,
    resp: &Response,
    idx: Option<u64>,
    chaos: Option<&crate::chaos::Chaos>,
    conn: u64,
    seq: u64,
    io_error: &Mutex<Option<std::io::Error>>,
) {
    if chaos.is_some_and(|c| c.drops_response(conn, seq)) {
        // Injected connection fault: the line is lost on the wire. The
        // client-side contract (resubmit on missing id) is exercised by
        // the chaos harness.
        return;
    }
    let line = render_response_idx(resp, idx);
    let mut w = writer.lock();
    let r = w.write_all(line.as_bytes()).and_then(|()| w.write_all(b"\n"));
    if let Err(e) = r {
        let mut slot = io_error.lock();
        if slot.is_none() {
            *slot = Some(e);
        }
    }
}

/// Summary of one TCP serving session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpSummary {
    /// Connections accepted.
    pub connections: u64,
    /// Batches served across all connections.
    pub batches: u64,
}

/// Accept and serve connections until `max_conns` have been handled
/// (`None` = forever). Connections are served one at a time — the
/// parallelism budget belongs to the rayon worker pool, and a single
/// accept loop keeps connection-level chaos decisions deterministic.
pub fn serve_tcp(
    server: &Server,
    listener: &TcpListener,
    max_conns: Option<u64>,
) -> std::io::Result<TcpSummary> {
    let mut summary = TcpSummary::default();
    while max_conns.is_none_or(|m| summary.connections < m) {
        let (stream, _addr) = listener.accept()?;
        summary.connections += 1;
        match serve_connection(server, &stream, summary.connections) {
            Ok(batches) => summary.batches += batches,
            // A broken connection is that client's problem, not the
            // server's: log to stderr and keep accepting.
            Err(e) => eprintln!("besst-serve: connection {}: {e}", summary.connections),
        }
    }
    Ok(summary)
}

fn serve_connection(server: &Server, stream: &TcpStream, conn: u64) -> std::io::Result<u64> {
    let reader = stream.try_clone()?;
    serve_lines(server, reader, stream, conn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServeConfig;

    fn server() -> Server {
        Server::new(ServeConfig::default()).expect("pool starts")
    }

    #[test]
    fn bounded_line_reader_caps_and_recovers() {
        let input = format!("{}\nshort\n", "x".repeat(MAX_LINE_BYTES + 100));
        let mut r = BufReader::new(input.as_bytes());
        let (line, truncated) =
            read_bounded_line(&mut r, MAX_LINE_BYTES).expect("reads").expect("a line");
        assert!(truncated);
        assert_eq!(line.len(), MAX_LINE_BYTES);
        let (line, truncated) =
            read_bounded_line(&mut r, MAX_LINE_BYTES).expect("reads").expect("a line");
        assert!(!truncated);
        assert_eq!(line, "short");
        assert!(read_bounded_line(&mut r, MAX_LINE_BYTES).expect("reads").is_none());
    }

    #[test]
    fn stdio_batch_roundtrip() {
        let s = server();
        let input = "{\"id\":1,\"steps\":20}\nnot json\n{\"id\":3,\"steps\":20,\"mode\":\"baseline\"}\n\n";
        let mut out: Vec<u8> = Vec::new();
        let batches = serve_lines(&s, input.as_bytes(), &mut out, 1).expect("serves");
        assert_eq!(batches, 1);
        let text = String::from_utf8(out).expect("utf8");
        let lines: Vec<&str> = text.trim_end().lines().collect();
        assert_eq!(lines.len(), 3, "{text}");
        // Exactly one response per line: ids 1 and 3 answered, the bad
        // line rejected with a typed error.
        assert!(lines.iter().any(|l| l.contains("\"id\":1") && l.contains("\"status\":\"ok\"")));
        assert!(lines.iter().any(|l| l.contains("\"id\":3") && l.contains("\"status\":\"ok\"")));
        assert!(lines
            .iter()
            .any(|l| l.contains("\"kind\":\"bad_request\"") && l.contains("\"status\":\"error\"")));
    }

    #[test]
    fn multiple_batches_on_one_stream() {
        let s = server();
        let input = "{\"id\":1,\"steps\":20}\n\n{\"id\":2,\"steps\":20}\n\n";
        let mut out: Vec<u8> = Vec::new();
        let batches = serve_lines(&s, input.as_bytes(), &mut out, 1).expect("serves");
        assert_eq!(batches, 2);
        let text = String::from_utf8(out).expect("utf8");
        assert_eq!(text.matches("\"status\":\"ok\"").count(), 2);
    }

    #[test]
    fn ordered_mode_emits_strict_input_order() {
        let s = server();
        // Mix valid queries with a malformed line in the middle; the
        // rejection must come back *at its line position*.
        let input = "{\"id\":7,\"steps\":20}\nnot json\n{\"id\":9,\"steps\":20}\n\n";
        let mut out: Vec<u8> = Vec::new();
        serve_lines(&s, input.as_bytes(), &mut out, 1).expect("serves");
        let text = String::from_utf8(out).expect("utf8");
        let lines: Vec<&str> = text.trim_end().lines().collect();
        assert_eq!(lines.len(), 3, "{text}");
        assert!(lines[0].contains("\"id\":7"), "{text}");
        assert!(lines[1].contains("\"kind\":\"bad_request\""), "{text}");
        assert!(lines[2].contains("\"id\":9"), "{text}");
        assert!(!text.contains("\"idx\""), "ordered mode carries no idx");
    }

    #[test]
    fn crlf_lines_parse_like_lf_lines() {
        let s = server();
        let input = "{\"id\":1,\"steps\":20}\r\n{\"id\":2,\"steps\":20}\r\n\r\n";
        let mut out: Vec<u8> = Vec::new();
        serve_lines(&s, input.as_bytes(), &mut out, 1).expect("serves");
        let text = String::from_utf8(out).expect("utf8");
        assert_eq!(text.matches("\"status\":\"ok\"").count(), 2, "{text}");
        assert!(!text.contains("bad_request"), "CRLF must not poison parsing: {text}");
    }

    #[test]
    fn line_exactly_at_cap_is_accepted() {
        // Pad a valid query with trailing spaces to exactly MAX_LINE_BYTES
        // (JSON whitespace, still parseable); one byte more is rejected.
        let q = "{\"id\":5,\"steps\":20}";
        let exact = format!("{q}{}\n\n", " ".repeat(MAX_LINE_BYTES - q.len()));
        let mut out: Vec<u8> = Vec::new();
        serve_lines(&server(), exact.as_bytes(), &mut out, 1).expect("serves");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.contains("\"id\":5") && text.contains("\"status\":\"ok\""), "{text}");

        let over = format!("{q}{}\n\n", " ".repeat(MAX_LINE_BYTES - q.len() + 1));
        let mut out: Vec<u8> = Vec::new();
        serve_lines(&server(), over.as_bytes(), &mut out, 1).expect("serves");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.contains("bad_request") && text.contains("exceeds"), "{text}");
    }

    #[test]
    fn split_reads_reassemble_lines() {
        // A 1-byte BufReader forces every line through the multi-chunk
        // path of read_bounded_line.
        let input = "{\"id\":1,\"steps\":20}\r\n{\"id\":2,\"steps\":20}\n\n";
        let mut r = BufReader::with_capacity(1, input.as_bytes());
        let (line, truncated) =
            read_bounded_line(&mut r, MAX_LINE_BYTES).expect("reads").expect("a line");
        assert!(!truncated);
        assert_eq!(line, "{\"id\":1,\"steps\":20}", "split CRLF line reassembles");
        let (line, _) =
            read_bounded_line(&mut r, MAX_LINE_BYTES).expect("reads").expect("a line");
        assert_eq!(line, "{\"id\":2,\"steps\":20}");
        // An oversized line arriving in 1-byte chunks still caps.
        let long = format!("{}\n", "y".repeat(40));
        let mut r = BufReader::with_capacity(1, long.as_bytes());
        let (line, truncated) = read_bounded_line(&mut r, 10).expect("reads").expect("a line");
        assert!(truncated);
        assert_eq!(line.len(), 10);
    }

    #[test]
    fn stream_mode_tags_every_line_with_idx() {
        let s = server();
        let input = "{\"mode\":\"stream\",\"v\":2}\n{\"id\":1,\"steps\":20}\nnot json\n{\"id\":3,\"steps\":20}\n\n";
        let mut out: Vec<u8> = Vec::new();
        serve_lines(&s, input.as_bytes(), &mut out, 1).expect("serves");
        let text = String::from_utf8(out).expect("utf8");
        let lines: Vec<&str> = text.trim_end().lines().collect();
        assert_eq!(lines.len(), 3, "{text}");
        // idx counts query lines only (the header does not count).
        assert!(lines.iter().any(|l| l.contains("\"id\":1") && l.contains("\"idx\":0")), "{text}");
        assert!(
            lines.iter().any(|l| l.contains("bad_request") && l.contains("\"idx\":1")),
            "{text}"
        );
        assert!(lines.iter().any(|l| l.contains("\"id\":3") && l.contains("\"idx\":2")), "{text}");
    }

    #[test]
    fn header_mid_stream_is_a_malformed_query() {
        let s = server();
        let input = "{\"id\":1,\"steps\":20}\n{\"mode\":\"stream\"}\n\n";
        let mut out: Vec<u8> = Vec::new();
        serve_lines(&s, input.as_bytes(), &mut out, 1).expect("serves");
        let text = String::from_utf8(out).expect("utf8");
        let lines: Vec<&str> = text.trim_end().lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        assert!(lines[0].contains("\"id\":1") && lines[0].contains("\"status\":\"ok\""));
        assert!(
            lines[1].contains("bad_request"),
            "a header after line 0 is just an id-less object: {text}"
        );
        assert!(!text.contains("\"idx\""), "the batch stays in ordered mode: {text}");
    }

    #[test]
    fn malformed_header_rejects_and_falls_back_to_ordered() {
        let s = server();
        let input = "{\"mode\":\"stream\",\"v\":1}\n{\"id\":1,\"steps\":20}\n\n";
        let mut out: Vec<u8> = Vec::new();
        serve_lines(&s, input.as_bytes(), &mut out, 1).expect("serves");
        let text = String::from_utf8(out).expect("utf8");
        let lines: Vec<&str> = text.trim_end().lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        assert!(lines[0].contains("bad_request") && lines[0].contains("version"), "{text}");
        assert!(lines[1].contains("\"id\":1") && lines[1].contains("\"status\":\"ok\""));
        assert!(!text.contains("\"idx\""), "fallback is ordered mode: {text}");
    }

    #[test]
    fn header_only_batch_is_not_eof() {
        let s = server();
        let input = "{\"mode\":\"stream\"}\n\n{\"id\":1,\"steps\":20}\n\n";
        let mut out: Vec<u8> = Vec::new();
        let batches = serve_lines(&s, input.as_bytes(), &mut out, 1).expect("serves");
        assert_eq!(batches, 2, "an empty streamed batch still frames");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.contains("\"id\":1") && text.contains("\"status\":\"ok\""), "{text}");
    }
}
