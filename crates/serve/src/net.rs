//! Transport frontends: JSONL batches over any `Read`/`Write` pair
//! (stdin/stdout in the binary) and over a plain [`TcpListener`].
//!
//! Framing: one JSON object per line; a blank line (or EOF) closes the
//! current batch, the server answers it — one response line per query,
//! then a blank line — and the next batch may begin on the same
//! connection. Input reads are *bounded* ([`MAX_LINE_BYTES`],
//! [`MAX_BATCH_LINES`]): a client that streams an endless line or batch
//! gets a typed error, not an unbounded buffer (enforced by besst-lint
//! rule D6 for this crate).
//!
//! When the server runs with chaos, the connection layer injects its
//! share of the `serve` preset: query lines may be duplicated on read
//! (the duplicate is a real submission, answered identically) and
//! response lines may be dropped on write (the client sees a missing
//! line and resubmits). Both are counted in
//! [`crate::chaos::ChaosStats`].

use crate::protocol::{parse_request, render_response};
use crate::query::ScenarioQuery;
use crate::server::{Outcome, Response, Server};
use crate::ServeError;
use parking_lot::Mutex;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};

/// Longest request line accepted, bytes.
pub const MAX_LINE_BYTES: usize = 64 * 1024;
/// Most lines accepted in one batch. Beyond this the batch is closed
/// and answered; admission control then sheds the overflow explicitly.
pub const MAX_BATCH_LINES: usize = 65_536;

/// Read one `\n`-terminated line without unbounded buffering: at most
/// `cap` bytes are accumulated, the rest of an oversized line is
/// discarded and reported.
///
/// Returns `Ok(None)` at EOF, `Ok(Some((line, truncated)))` otherwise.
fn read_bounded_line<R: BufRead>(
    reader: &mut R,
    cap: usize,
) -> std::io::Result<Option<(String, bool)>> {
    let mut buf: Vec<u8> = Vec::new();
    let mut truncated = false;
    let mut saw_any = false;
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            // EOF: a final unterminated line still counts.
            return Ok(if saw_any {
                Some((String::from_utf8_lossy(&buf).into_owned(), truncated))
            } else {
                None
            });
        }
        saw_any = true;
        if let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
            if !truncated {
                let take = pos.min(cap.saturating_sub(buf.len()));
                buf.extend_from_slice(&chunk[..take]);
                truncated = take < pos;
            }
            reader.consume(pos + 1);
            return Ok(Some((String::from_utf8_lossy(&buf).into_owned(), truncated)));
        }
        if !truncated {
            let take = chunk.len().min(cap.saturating_sub(buf.len()));
            buf.extend_from_slice(&chunk[..take]);
            truncated = take < chunk.len();
        }
        let len = chunk.len();
        reader.consume(len);
    }
}

/// One parsed batch: queries to run plus pre-built responses for
/// malformed lines, each remembering its position so the output
/// interleaves in input order.
struct Batch {
    queries: Vec<ScenarioQuery>,
    /// (position in batch, ready response) for lines that never reached
    /// the server.
    rejects: Vec<(usize, Response)>,
    /// Lines consumed (valid + malformed), to notice an empty batch.
    lines: usize,
}

/// Read one batch (until blank line or EOF). `conn` keys connection-level
/// chaos decisions.
fn read_batch<R: BufRead>(
    reader: &mut R,
    server: &Server,
    conn: u64,
) -> std::io::Result<Batch> {
    let mut batch = Batch { queries: Vec::new(), rejects: Vec::new(), lines: 0 };
    let chaos = server.config().chaos.clone();
    while batch.lines < MAX_BATCH_LINES {
        let Some((line, truncated)) = read_bounded_line(reader, MAX_LINE_BYTES)? else {
            break; // EOF
        };
        if line.trim().is_empty() {
            if batch.lines == 0 {
                continue; // leading blank lines are framing noise
            }
            break; // batch delimiter
        }
        let pos = batch.lines;
        batch.lines += 1;
        if truncated {
            batch.rejects.push((
                pos,
                Response {
                    id: 0,
                    outcome: Outcome::Err(ServeError::BadRequest(format!(
                        "line exceeds {MAX_LINE_BYTES} bytes"
                    ))),
                },
            ));
            continue;
        }
        match parse_request(&line) {
            Ok(q) => {
                let dup = chaos
                    .as_ref()
                    .is_some_and(|c| c.duplicates_query(conn, pos as u64));
                batch.queries.push(q.clone());
                if dup {
                    // A duplicated submission is a real second query; the
                    // server answers both, identically.
                    batch.queries.push(q);
                }
            }
            Err(resp) => batch.rejects.push((pos, resp)),
        }
    }
    Ok(batch)
}

/// Serve batches from `reader` to `writer` until EOF. Returns the number
/// of batches served.
pub fn serve_lines<R: Read, W: Write + Send>(
    server: &Server,
    reader: R,
    writer: W,
    conn: u64,
) -> std::io::Result<u64> {
    let mut reader = BufReader::new(reader);
    let writer = Mutex::new(writer);
    let chaos = server.config().chaos.clone();
    let mut batches = 0u64;
    loop {
        let batch = read_batch(&mut reader, server, conn)?;
        if batch.lines == 0 {
            break; // EOF with nothing pending
        }
        batches += 1;
        let io_error: Mutex<Option<std::io::Error>> = Mutex::new(None);
        let mut seq = 0u64;
        // Malformed-line responses go out first (they are known before
        // the batch runs); each still occupies one response line.
        for (_, resp) in &batch.rejects {
            write_response(&writer, resp, chaos.as_ref(), conn, seq, &io_error);
            seq += 1;
        }
        let seq_base = seq;
        server.handle_batch_indexed(&batch.queries, &|idx, resp| {
            write_response(
                &writer,
                &resp,
                chaos.as_ref(),
                conn,
                seq_base + idx as u64,
                &io_error,
            );
        });
        if let Some(e) = io_error.into_inner() {
            return Err(e);
        }
        let mut w = writer.lock();
        w.write_all(b"\n")?;
        w.flush()?;
    }
    Ok(batches)
}

fn write_response<W: Write>(
    writer: &Mutex<W>,
    resp: &Response,
    chaos: Option<&crate::chaos::Chaos>,
    conn: u64,
    seq: u64,
    io_error: &Mutex<Option<std::io::Error>>,
) {
    if chaos.is_some_and(|c| c.drops_response(conn, seq)) {
        // Injected connection fault: the line is lost on the wire. The
        // client-side contract (resubmit on missing id) is exercised by
        // the chaos harness.
        return;
    }
    let line = render_response(resp);
    let mut w = writer.lock();
    let r = w.write_all(line.as_bytes()).and_then(|()| w.write_all(b"\n"));
    if let Err(e) = r {
        let mut slot = io_error.lock();
        if slot.is_none() {
            *slot = Some(e);
        }
    }
}

/// Summary of one TCP serving session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpSummary {
    /// Connections accepted.
    pub connections: u64,
    /// Batches served across all connections.
    pub batches: u64,
}

/// Accept and serve connections until `max_conns` have been handled
/// (`None` = forever). Connections are served one at a time — the
/// parallelism budget belongs to the rayon worker pool, and a single
/// accept loop keeps connection-level chaos decisions deterministic.
pub fn serve_tcp(
    server: &Server,
    listener: &TcpListener,
    max_conns: Option<u64>,
) -> std::io::Result<TcpSummary> {
    let mut summary = TcpSummary::default();
    while max_conns.is_none_or(|m| summary.connections < m) {
        let (stream, _addr) = listener.accept()?;
        summary.connections += 1;
        match serve_connection(server, &stream, summary.connections) {
            Ok(batches) => summary.batches += batches,
            // A broken connection is that client's problem, not the
            // server's: log to stderr and keep accepting.
            Err(e) => eprintln!("besst-serve: connection {}: {e}", summary.connections),
        }
    }
    Ok(summary)
}

fn serve_connection(server: &Server, stream: &TcpStream, conn: u64) -> std::io::Result<u64> {
    let reader = stream.try_clone()?;
    serve_lines(server, reader, stream, conn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServeConfig;

    fn server() -> Server {
        Server::new(ServeConfig::default()).expect("pool starts")
    }

    #[test]
    fn bounded_line_reader_caps_and_recovers() {
        let input = format!("{}\nshort\n", "x".repeat(MAX_LINE_BYTES + 100));
        let mut r = BufReader::new(input.as_bytes());
        let (line, truncated) =
            read_bounded_line(&mut r, MAX_LINE_BYTES).expect("reads").expect("a line");
        assert!(truncated);
        assert_eq!(line.len(), MAX_LINE_BYTES);
        let (line, truncated) =
            read_bounded_line(&mut r, MAX_LINE_BYTES).expect("reads").expect("a line");
        assert!(!truncated);
        assert_eq!(line, "short");
        assert!(read_bounded_line(&mut r, MAX_LINE_BYTES).expect("reads").is_none());
    }

    #[test]
    fn stdio_batch_roundtrip() {
        let s = server();
        let input = "{\"id\":1,\"steps\":20}\nnot json\n{\"id\":3,\"steps\":20,\"mode\":\"baseline\"}\n\n";
        let mut out: Vec<u8> = Vec::new();
        let batches = serve_lines(&s, input.as_bytes(), &mut out, 1).expect("serves");
        assert_eq!(batches, 1);
        let text = String::from_utf8(out).expect("utf8");
        let lines: Vec<&str> = text.trim_end().lines().collect();
        assert_eq!(lines.len(), 3, "{text}");
        // Exactly one response per line: ids 1 and 3 answered, the bad
        // line rejected with a typed error.
        assert!(lines.iter().any(|l| l.contains("\"id\":1") && l.contains("\"status\":\"ok\"")));
        assert!(lines.iter().any(|l| l.contains("\"id\":3") && l.contains("\"status\":\"ok\"")));
        assert!(lines
            .iter()
            .any(|l| l.contains("\"kind\":\"bad_request\"") && l.contains("\"status\":\"error\"")));
    }

    #[test]
    fn multiple_batches_on_one_stream() {
        let s = server();
        let input = "{\"id\":1,\"steps\":20}\n\n{\"id\":2,\"steps\":20}\n\n";
        let mut out: Vec<u8> = Vec::new();
        let batches = serve_lines(&s, input.as_bytes(), &mut out, 1).expect("serves");
        assert_eq!(batches, 2);
        let text = String::from_utf8(out).expect("utf8");
        assert_eq!(text.matches("\"status\":\"ok\"").count(), 2);
    }
}
