//! Wire protocol: one JSON object per line, in and out.
//!
//! Requests are parsed strictly ([`ScenarioQuery::from_value`]); a
//! malformed line still produces exactly one response line (with the
//! request's `id` when one can be salvaged, else `id: 0`). Response
//! rendering is canonical — sorted keys, shortest-roundtrip floats — so
//! "bit-identical results" is a plain string comparison.
//!
//! Response lines carry only *semantic* fields (id, status, numbers,
//! class, error kind). Operational detail — retry counts, cache hits,
//! panic messages, shard routing — stays in
//! [`crate::server::ServerStats`]; putting it on the wire would make
//! chaos-run responses differ textually from fault-free ones even when
//! the answers agree.
//!
//! ## Protocol v2: the batch header and streaming mode
//!
//! A batch may open with a *header line* — a JSON object with a `mode`
//! key and **no** `id` key (queries require `id`, so the two can never
//! be confused):
//!
//! ```text
//! {"mode":"stream","v":2}
//! {"id":1,"steps":100,"seed":7}
//! {"id":2,"app":"vulcan"}
//!
//! ```
//!
//! `mode` is `"ordered"` (the v1 behavior: one response line per query
//! line, in input order) or `"stream"`: responses are flushed in
//! *completion* order, each carrying an `idx` field naming the 0-based
//! position of the query line it answers (the header does not count).
//! `v`, if present, must be `2`. A malformed header is answered with a
//! `bad_request` line and the batch falls back to ordered mode; a
//! header anywhere but the first line of a batch is just a malformed
//! query (it has no `id`) and is rejected like one. Sorting a streamed
//! batch's lines by `idx` and stripping the `idx` fields reproduces the
//! ordered-mode output byte for byte — see `tests/stream.rs`.

use crate::json::{parse, Value};
use crate::query::ScenarioQuery;
use crate::server::{Outcome, Response};
use crate::ServeError;
use std::collections::BTreeMap;

/// Response ordering for one batch, selected by the optional v2 batch
/// header. The default (no header) is [`BatchMode::Ordered`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchMode {
    /// One response line per query line, in input order.
    #[default]
    Ordered,
    /// Responses flushed in completion order, each carrying an `idx`
    /// field naming the query line it answers.
    Stream,
}

/// The protocol version this server speaks (the optional `v` field of a
/// batch header).
pub const PROTOCOL_VERSION: u64 = 2;

/// Probe `line` for a v2 batch header. `None` means the line is not a
/// header at all (it should be parsed as a query); `Some(Ok)` is a valid
/// header; `Some(Err)` is a malformed header with its ready-to-send
/// rejection.
///
/// A line is a header candidate iff it parses as a JSON object with a
/// `mode` key and no `id` key — valid queries always carry `id`, so no
/// query line can be mistaken for a header.
pub fn parse_header(line: &str) -> Option<Result<BatchMode, Response>> {
    let obj = match parse(line) {
        Ok(Value::Obj(obj)) => obj,
        _ => return None,
    };
    if obj.contains_key("id") || !obj.contains_key("mode") {
        return None;
    }
    let reject = |msg: String| {
        Some(Err(Response { id: 0, outcome: Outcome::Err(ServeError::BadRequest(msg)) }))
    };
    for key in obj.keys() {
        if key != "mode" && key != "v" {
            return reject(format!("unknown batch-header field \"{key}\""));
        }
    }
    if let Some(v) = obj.get("v") {
        if v.as_u64() != Some(PROTOCOL_VERSION) {
            return reject(format!(
                "unsupported protocol version {}; this server speaks v{PROTOCOL_VERSION}",
                v.render()
            ));
        }
    }
    match obj.get("mode").and_then(|m| m.as_str()) {
        Some("ordered") => Some(Ok(BatchMode::Ordered)),
        Some("stream") => Some(Ok(BatchMode::Stream)),
        _ => reject("batch-header field \"mode\" must be \"ordered\" or \"stream\"".into()),
    }
}

/// Parse one request line. `Err` carries the ready-to-send error
/// response for a malformed line.
pub fn parse_request(line: &str) -> Result<ScenarioQuery, Response> {
    let value = match parse(line) {
        Ok(v) => v,
        Err(e) => {
            return Err(Response {
                id: 0,
                outcome: Outcome::Err(ServeError::BadRequest(e.to_string())),
            })
        }
    };
    ScenarioQuery::from_value(&value).map_err(|e| {
        // Salvage the id when the object had a readable one, so the
        // client can correlate the rejection.
        let id = value
            .as_obj()
            .and_then(|o| o.get("id"))
            .and_then(Value::as_u64)
            .unwrap_or(0);
        Response { id, outcome: Outcome::Err(e) }
    })
}

/// Render one response as a compact, canonical JSON line (no trailing
/// newline).
pub fn render_response(resp: &Response) -> String {
    render_response_idx(resp, None)
}

/// [`render_response`], optionally tagging the line with the streaming
/// mode's `idx` field (the 0-based query-line position it answers).
pub fn render_response_idx(resp: &Response, idx: Option<u64>) -> String {
    let mut obj = BTreeMap::new();
    obj.insert("id".to_string(), Value::Int(resp.id));
    if let Some(idx) = idx {
        obj.insert("idx".to_string(), Value::Int(idx));
    }
    match &resp.outcome {
        Outcome::Ok { answer, .. } => {
            obj.insert("status".to_string(), Value::Str("ok".into()));
            obj.insert("baseline_s".to_string(), Value::Num(answer.baseline_s));
            obj.insert("makespan_s".to_string(), Value::Num(answer.makespan_s));
            obj.insert("n_faults".to_string(), Value::Int(u64::from(answer.n_faults)));
            obj.insert("completed".to_string(), Value::Bool(answer.completed));
            obj.insert("class".to_string(), Value::Str(answer.class.into()));
        }
        Outcome::Err(e) => {
            obj.insert("status".to_string(), Value::Str("error".into()));
            obj.insert("kind".to_string(), Value::Str(e.kind().into()));
            match e {
                ServeError::BadRequest(m) | ServeError::Sim(m) | ServeError::Internal(m) => {
                    obj.insert("detail".to_string(), Value::Str(m.clone()));
                }
                // No detail on the wire: the message differs between a
                // scenario's own panic and an injected chaos crash, and
                // shard routing is operational detail.
                ServeError::Panic(_) | ServeError::ShardLost { .. } => {}
                ServeError::Quarantined { failures } => {
                    obj.insert("failures".to_string(), Value::Int(u64::from(*failures)));
                }
                ServeError::Timeout { deadline_ms } => {
                    obj.insert("deadline_ms".to_string(), Value::Int(*deadline_ms));
                }
                ServeError::Overloaded { retry_after_ms } => {
                    obj.insert("retry_after_ms".to_string(), Value::Int(*retry_after_ms));
                }
            }
        }
    }
    Value::Obj(obj).render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::QueryAnswer;

    #[test]
    fn malformed_line_salvages_the_id() {
        let r = parse_request(r#"{"id": 9, "ranks": "sixty-four"}"#).expect_err("must fail");
        assert_eq!(r.id, 9);
        assert!(matches!(r.outcome, Outcome::Err(ServeError::BadRequest(_))));
        let r = parse_request("not json at all").expect_err("must fail");
        assert_eq!(r.id, 0);
    }

    #[test]
    fn ok_rendering_is_canonical() {
        let resp = Response {
            id: 3,
            outcome: Outcome::Ok {
                answer: QueryAnswer {
                    baseline_s: 1.5,
                    makespan_s: 2.25,
                    n_faults: 2,
                    completed: true,
                    class: "Correct",
                },
                cached: true,
                retries: 4,
            },
        };
        let line = render_response(&resp);
        assert_eq!(
            line,
            r#"{"baseline_s":1.5,"class":"Correct","completed":true,"id":3,"makespan_s":2.25,"n_faults":2,"status":"ok"}"#
        );
        // Operational fields stay off the wire.
        assert!(!line.contains("retries") && !line.contains("cached"));
    }

    #[test]
    fn error_rendering_carries_the_kind() {
        let resp = Response {
            id: 4,
            outcome: Outcome::Err(ServeError::Overloaded { retry_after_ms: 25 }),
        };
        assert_eq!(
            render_response(&resp),
            r#"{"id":4,"kind":"overloaded","retry_after_ms":25,"status":"error"}"#
        );
        let resp = Response {
            id: 5,
            outcome: Outcome::Err(ServeError::Panic("secret internals".into())),
        };
        let line = render_response(&resp);
        assert_eq!(line, r#"{"id":5,"kind":"panic","status":"error"}"#);
    }

    #[test]
    fn roundtrip_request() {
        let q = parse_request(r#"{"id":1,"steps":12,"seed":9}"#).expect("parses");
        assert_eq!((q.id, q.steps, q.seed), (1, 12, 9));
    }

    #[test]
    fn header_detection_never_eats_a_query() {
        assert_eq!(parse_header(r#"{"mode":"stream"}"#), Some(Ok(BatchMode::Stream)));
        assert_eq!(parse_header(r#"{"mode":"stream","v":2}"#), Some(Ok(BatchMode::Stream)));
        assert_eq!(parse_header(r#"{"mode":"ordered"}"#), Some(Ok(BatchMode::Ordered)));
        // A query's own "mode" field never makes it a header: queries
        // carry "id".
        assert_eq!(parse_header(r#"{"id":1,"mode":"online"}"#), None);
        // Non-objects and mode-less objects are not headers.
        assert_eq!(parse_header("not json"), None);
        assert_eq!(parse_header(r#"{"v":2}"#), None);
    }

    #[test]
    fn malformed_headers_are_rejected_with_detail() {
        let r = parse_header(r#"{"mode":"sideways"}"#).expect("candidate").expect_err("rejected");
        assert!(matches!(&r.outcome, Outcome::Err(ServeError::BadRequest(m)) if m.contains("mode")));
        let r = parse_header(r#"{"mode":"stream","v":1}"#).expect("candidate").expect_err("rejected");
        assert!(matches!(&r.outcome, Outcome::Err(ServeError::BadRequest(m)) if m.contains("version")));
        let r = parse_header(r#"{"mode":"stream","extra":true}"#)
            .expect("candidate")
            .expect_err("rejected");
        assert!(matches!(&r.outcome, Outcome::Err(ServeError::BadRequest(m)) if m.contains("extra")));
    }

    #[test]
    fn idx_rides_along_only_in_stream_mode() {
        let resp = Response {
            id: 4,
            outcome: Outcome::Err(ServeError::Timeout { deadline_ms: 50 }),
        };
        assert_eq!(
            render_response_idx(&resp, Some(17)),
            r#"{"deadline_ms":50,"id":4,"idx":17,"kind":"timeout","status":"error"}"#
        );
        assert_eq!(render_response_idx(&resp, None), render_response(&resp));
    }

    #[test]
    fn shard_lost_renders_kind_only() {
        let resp =
            Response { id: 6, outcome: Outcome::Err(ServeError::ShardLost { shard: 3 }) };
        assert_eq!(render_response(&resp), r#"{"id":6,"kind":"shard_lost","status":"error"}"#);
    }
}
