//! Wire protocol: one JSON object per line, in and out.
//!
//! Requests are parsed strictly ([`ScenarioQuery::from_value`]); a
//! malformed line still produces exactly one response line (with the
//! request's `id` when one can be salvaged, else `id: 0`). Response
//! rendering is canonical — sorted keys, shortest-roundtrip floats — so
//! "bit-identical results" is a plain string comparison.
//!
//! Response lines carry only *semantic* fields (id, status, numbers,
//! class, error kind). Operational detail — retry counts, cache hits,
//! panic messages — stays in [`crate::server::ServerStats`]; putting it
//! on the wire would make chaos-run responses differ textually from
//! fault-free ones even when the answers agree.

use crate::json::{parse, Value};
use crate::query::ScenarioQuery;
use crate::server::{Outcome, Response};
use crate::ServeError;
use std::collections::BTreeMap;

/// Parse one request line. `Err` carries the ready-to-send error
/// response for a malformed line.
pub fn parse_request(line: &str) -> Result<ScenarioQuery, Response> {
    let value = match parse(line) {
        Ok(v) => v,
        Err(e) => {
            return Err(Response {
                id: 0,
                outcome: Outcome::Err(ServeError::BadRequest(e.to_string())),
            })
        }
    };
    ScenarioQuery::from_value(&value).map_err(|e| {
        // Salvage the id when the object had a readable one, so the
        // client can correlate the rejection.
        let id = value
            .as_obj()
            .and_then(|o| o.get("id"))
            .and_then(Value::as_u64)
            .unwrap_or(0);
        Response { id, outcome: Outcome::Err(e) }
    })
}

/// Render one response as a compact, canonical JSON line (no trailing
/// newline).
pub fn render_response(resp: &Response) -> String {
    let mut obj = BTreeMap::new();
    obj.insert("id".to_string(), Value::Int(resp.id));
    match &resp.outcome {
        Outcome::Ok { answer, .. } => {
            obj.insert("status".to_string(), Value::Str("ok".into()));
            obj.insert("baseline_s".to_string(), Value::Num(answer.baseline_s));
            obj.insert("makespan_s".to_string(), Value::Num(answer.makespan_s));
            obj.insert("n_faults".to_string(), Value::Int(u64::from(answer.n_faults)));
            obj.insert("completed".to_string(), Value::Bool(answer.completed));
            obj.insert("class".to_string(), Value::Str(answer.class.into()));
        }
        Outcome::Err(e) => {
            obj.insert("status".to_string(), Value::Str("error".into()));
            obj.insert("kind".to_string(), Value::Str(e.kind().into()));
            match e {
                ServeError::BadRequest(m) | ServeError::Sim(m) | ServeError::Internal(m) => {
                    obj.insert("detail".to_string(), Value::Str(m.clone()));
                }
                // No detail on the wire: the message differs between a
                // scenario's own panic and an injected chaos crash.
                ServeError::Panic(_) => {}
                ServeError::Quarantined { failures } => {
                    obj.insert("failures".to_string(), Value::Int(u64::from(*failures)));
                }
                ServeError::Timeout { deadline_ms } => {
                    obj.insert("deadline_ms".to_string(), Value::Int(*deadline_ms));
                }
                ServeError::Overloaded { retry_after_ms } => {
                    obj.insert("retry_after_ms".to_string(), Value::Int(*retry_after_ms));
                }
            }
        }
    }
    Value::Obj(obj).render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::QueryAnswer;

    #[test]
    fn malformed_line_salvages_the_id() {
        let r = parse_request(r#"{"id": 9, "ranks": "sixty-four"}"#).expect_err("must fail");
        assert_eq!(r.id, 9);
        assert!(matches!(r.outcome, Outcome::Err(ServeError::BadRequest(_))));
        let r = parse_request("not json at all").expect_err("must fail");
        assert_eq!(r.id, 0);
    }

    #[test]
    fn ok_rendering_is_canonical() {
        let resp = Response {
            id: 3,
            outcome: Outcome::Ok {
                answer: QueryAnswer {
                    baseline_s: 1.5,
                    makespan_s: 2.25,
                    n_faults: 2,
                    completed: true,
                    class: "Correct",
                },
                cached: true,
                retries: 4,
            },
        };
        let line = render_response(&resp);
        assert_eq!(
            line,
            r#"{"baseline_s":1.5,"class":"Correct","completed":true,"id":3,"makespan_s":2.25,"n_faults":2,"status":"ok"}"#
        );
        // Operational fields stay off the wire.
        assert!(!line.contains("retries") && !line.contains("cached"));
    }

    #[test]
    fn error_rendering_carries_the_kind() {
        let resp = Response {
            id: 4,
            outcome: Outcome::Err(ServeError::Overloaded { retry_after_ms: 25 }),
        };
        assert_eq!(
            render_response(&resp),
            r#"{"id":4,"kind":"overloaded","retry_after_ms":25,"status":"error"}"#
        );
        let resp = Response {
            id: 5,
            outcome: Outcome::Err(ServeError::Panic("secret internals".into())),
        };
        let line = render_response(&resp);
        assert_eq!(line, r#"{"id":5,"kind":"panic","status":"error"}"#);
    }

    #[test]
    fn roundtrip_request() {
        let q = parse_request(r#"{"id":1,"steps":12,"seed":9}"#).expect("parses");
        assert_eq!((q.id, q.steps, q.seed), (1, 12, 9));
    }
}
