//! Scenario queries: the canonical request shape, strict parsing with
//! defaults, and the content hashes the cache and quarantine key on.
//!
//! Canonicalization contract (property-tested in `tests/cache_key.rs`):
//! two requests that describe the same scenario — whatever their field
//! order, and whether defaulted fields are spelled out or elided — hash
//! to the same [`ScenarioQuery::baseline_key`]; changing any semantic
//! field changes it. The baseline key deliberately excludes `id`,
//! `seed`, `mode`, `mtbf` and `deadline_ms`: the cached artifact is the
//! fault-free BE timeline, which is simulated with `monte_carlo: false`
//! and therefore identical for every seed and overlay configuration.

use crate::json::Value;
use crate::ServeError;
use besst_fti::FtiConfig;

/// Which synthetic testbed to price the scenario on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineKind {
    /// LLNL Quartz (Xeon, fat-tree) — the paper's primary testbed.
    Quartz,
    /// LLNL Vulcan (BG/Q, 5-D torus) — slower cores, slower I/O.
    Vulcan,
}

impl MachineKind {
    /// Wire name.
    pub fn name(self) -> &'static str {
        match self {
            MachineKind::Quartz => "quartz",
            MachineKind::Vulcan => "vulcan",
        }
    }
}

/// Which application proxy the scenario runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppKind {
    /// The LULESH shock-hydro proxy.
    Lulesh,
    /// The CMT-bone spectral-element proxy.
    Cmtbone,
    /// A deliberately poisoned scenario: executing it panics. Exists so
    /// the isolation layer has a first-class adversary in tests, smoke
    /// runs and the chaos harness.
    Poison,
}

impl AppKind {
    /// Wire name.
    pub fn name(self) -> &'static str {
        match self {
            AppKind::Lulesh => "lulesh",
            AppKind::Cmtbone => "cmtbone",
            AppKind::Poison => "poison",
        }
    }
}

/// Baseline only, or baseline + one online fault-injected overlay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryMode {
    /// Return the failure-free makespan.
    Baseline,
    /// Replay the baseline timeline under online fail-stop injection.
    Online,
}

impl QueryMode {
    /// Wire name.
    pub fn name(self) -> &'static str {
        match self {
            QueryMode::Baseline => "baseline",
            QueryMode::Online => "online",
        }
    }
}

/// One scenario query, fully defaulted and validated.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioQuery {
    /// Caller-chosen id echoed on the response line.
    pub id: u64,
    /// Testbed.
    pub machine: MachineKind,
    /// Application proxy.
    pub app: AppKind,
    /// Elements per rank (LULESH `epr` / CMT-bone `elements_per_rank`).
    pub problem_size: u32,
    /// MPI ranks.
    pub ranks: u32,
    /// Application timesteps.
    pub steps: u32,
    /// L1 checkpoint period in timesteps; 0 disables checkpointing.
    pub ft_period: u32,
    /// Seed for the online fault overlay (ignored for baseline mode).
    pub seed: u64,
    /// What to compute.
    pub mode: QueryMode,
    /// Node MTBF in seconds for the overlay; 0.0 picks the bench default
    /// (two nodes, a handful of crashes per run).
    pub mtbf: f64,
    /// Per-query soft deadline in milliseconds; 0 uses the server's.
    pub deadline_ms: u64,
}

/// Field defaults, shared by the parser and the canonicalization tests.
pub mod defaults {
    /// `machine`.
    pub const MACHINE: &str = "quartz";
    /// `app`.
    pub const APP: &str = "lulesh";
    /// `problem_size`.
    pub const PROBLEM_SIZE: u32 = 10;
    /// `ranks`.
    pub const RANKS: u32 = 64;
    /// `steps`.
    pub const STEPS: u32 = 100;
    /// `ft_period`.
    pub const FT_PERIOD: u32 = 10;
    /// `seed`.
    pub const SEED: u64 = 0;
    /// `mode`.
    pub const MODE: &str = "online";
    /// `mtbf` (0 = auto).
    pub const MTBF: f64 = 0.0;
    /// `deadline_ms` (0 = server default).
    pub const DEADLINE_MS: u64 = 0;
}

/// Bounds a query must satisfy to be admitted. Deliberately tight: this
/// is the first robustness layer (a hostile request is rejected with a
/// typed error before it can reach a worker).
pub mod limits {
    /// Most ranks a query may ask for.
    pub const MAX_RANKS: u32 = 512;
    /// Most timesteps a query may ask for.
    pub const MAX_STEPS: u32 = 10_000;
    /// Largest problem size (elements per rank).
    pub const MAX_PROBLEM_SIZE: u32 = 1_000;
}

impl ScenarioQuery {
    /// Parse one request object. Strict: unknown fields are rejected so
    /// that two requests with the same baseline key really are the same
    /// scenario (a typo'd field can never silently alias a cached one).
    pub fn from_value(v: &Value) -> Result<ScenarioQuery, ServeError> {
        let obj = v
            .as_obj()
            .ok_or_else(|| ServeError::BadRequest("request must be a JSON object".into()))?;
        const KNOWN: [&str; 11] = [
            "id", "machine", "app", "problem_size", "ranks", "steps", "ft_period", "seed",
            "mode", "mtbf", "deadline_ms",
        ];
        for key in obj.keys() {
            if !KNOWN.contains(&key.as_str()) {
                return Err(ServeError::BadRequest(format!("unknown field \"{key}\"")));
            }
        }
        let get_u64 = |key: &str, default: u64| -> Result<u64, ServeError> {
            match obj.get(key) {
                None => Ok(default),
                Some(v) => v
                    .as_u64()
                    .ok_or_else(|| bad_field(key, "a non-negative integer")),
            }
        };
        let get_u32 = |key: &str, default: u32| -> Result<u32, ServeError> {
            let n = get_u64(key, u64::from(default))?;
            u32::try_from(n).map_err(|_| bad_field(key, "a 32-bit integer"))
        };
        let id = obj
            .get("id")
            .ok_or_else(|| ServeError::BadRequest("missing required field \"id\"".into()))?
            .as_u64()
            .ok_or_else(|| bad_field("id", "a non-negative integer"))?;
        let machine = match obj.get("machine").map(|v| v.as_str()) {
            None => defaults::MACHINE,
            Some(Some(s)) => s,
            Some(None) => return Err(bad_field("machine", "a string")),
        };
        let machine = match machine {
            "quartz" => MachineKind::Quartz,
            "vulcan" => MachineKind::Vulcan,
            other => {
                return Err(ServeError::BadRequest(format!(
                    "unknown machine \"{other}\" (quartz|vulcan)"
                )))
            }
        };
        let app = match obj.get("app").map(|v| v.as_str()) {
            None => defaults::APP,
            Some(Some(s)) => s,
            Some(None) => return Err(bad_field("app", "a string")),
        };
        let app = match app {
            "lulesh" => AppKind::Lulesh,
            "cmtbone" => AppKind::Cmtbone,
            "poison" => AppKind::Poison,
            other => {
                return Err(ServeError::BadRequest(format!(
                    "unknown app \"{other}\" (lulesh|cmtbone|poison)"
                )))
            }
        };
        let mode = match obj.get("mode").map(|v| v.as_str()) {
            None => defaults::MODE,
            Some(Some(s)) => s,
            Some(None) => return Err(bad_field("mode", "a string")),
        };
        let mode = match mode {
            "baseline" => QueryMode::Baseline,
            "online" => QueryMode::Online,
            other => {
                return Err(ServeError::BadRequest(format!(
                    "unknown mode \"{other}\" (baseline|online)"
                )))
            }
        };
        let mtbf = match obj.get("mtbf") {
            None => defaults::MTBF,
            Some(v) => v.as_f64().ok_or_else(|| bad_field("mtbf", "a number"))?,
        };
        let q = ScenarioQuery {
            id,
            machine,
            app,
            problem_size: get_u32("problem_size", defaults::PROBLEM_SIZE)?,
            ranks: get_u32("ranks", defaults::RANKS)?,
            steps: get_u32("steps", defaults::STEPS)?,
            ft_period: get_u32("ft_period", defaults::FT_PERIOD)?,
            seed: get_u64("seed", defaults::SEED)?,
            mode,
            mtbf,
            deadline_ms: get_u64("deadline_ms", defaults::DEADLINE_MS)?,
        };
        q.validate()?;
        Ok(q)
    }

    /// Reject out-of-bounds or internally inconsistent queries.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.ranks == 0 || self.ranks > limits::MAX_RANKS {
            return Err(ServeError::BadRequest(format!(
                "ranks must be in 1..={}, got {}",
                limits::MAX_RANKS,
                self.ranks
            )));
        }
        if self.steps == 0 || self.steps > limits::MAX_STEPS {
            return Err(ServeError::BadRequest(format!(
                "steps must be in 1..={}, got {}",
                limits::MAX_STEPS,
                self.steps
            )));
        }
        if self.problem_size == 0 || self.problem_size > limits::MAX_PROBLEM_SIZE {
            return Err(ServeError::BadRequest(format!(
                "problem_size must be in 1..={}, got {}",
                limits::MAX_PROBLEM_SIZE,
                self.problem_size
            )));
        }
        if !(self.mtbf.is_finite() && self.mtbf >= 0.0) {
            return Err(ServeError::BadRequest(format!(
                "mtbf must be a finite non-negative number, got {}",
                self.mtbf
            )));
        }
        if self.ft_period > 0 {
            if self.ft_period > self.steps {
                return Err(ServeError::BadRequest(format!(
                    "ft_period {} exceeds steps {} (no checkpoint would ever fire)",
                    self.ft_period, self.steps
                )));
            }
            if let Err(e) = FtiConfig::l1_only(self.ft_period).validate(self.ranks) {
                return Err(ServeError::BadRequest(format!("FTI rejects this geometry: {e}")));
            }
        }
        Ok(())
    }

    /// Content hash of the fault-free baseline this query replays: the
    /// cache key. Excludes `id`, `seed`, `mode`, `mtbf`, `deadline_ms`
    /// (see module docs).
    pub fn baseline_key(&self) -> u64 {
        let mut h = 0x42455f_5345525645; // "BE_SERVE" domain separator
        h = mix(h, self.machine as u64 + 1);
        h = mix(h, self.app as u64 + 1);
        h = mix(h, u64::from(self.problem_size));
        h = mix(h, u64::from(self.ranks));
        h = mix(h, u64::from(self.steps));
        h = mix(h, u64::from(self.ft_period));
        h
    }

    /// Content hash of the full semantic query (everything except `id`
    /// and `deadline_ms`): the quarantine fingerprint. Two queries with
    /// the same fingerprint run exactly the same computation, so a
    /// scenario that panicked repeatedly can be fast-failed when it
    /// arrives again under a different id.
    pub fn fingerprint(&self) -> u64 {
        let mut h = self.baseline_key();
        h = mix(h, self.seed);
        h = mix(h, self.mode as u64 + 1);
        h = mix(h, self.mtbf.to_bits());
        h
    }
}

fn bad_field(key: &str, want: &str) -> ServeError {
    ServeError::BadRequest(format!("field \"{key}\" must be {want}"))
}

/// One SplitMix64-style mixing round: absorb `v` into `h`. The same
/// finalizer the DES substrate's keyed-hash fault decisions use.
pub(crate) fn mix(h: u64, v: u64) -> u64 {
    let mut z = h ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn q(text: &str) -> Result<ScenarioQuery, ServeError> {
        ScenarioQuery::from_value(&parse(text).expect("valid JSON"))
    }

    #[test]
    fn minimal_request_gets_defaults() {
        let query = q(r#"{"id": 7}"#).expect("parses");
        assert_eq!(query.id, 7);
        assert_eq!(query.machine, MachineKind::Quartz);
        assert_eq!(query.app, AppKind::Lulesh);
        assert_eq!(query.ranks, defaults::RANKS);
        assert_eq!(query.mode, QueryMode::Online);
    }

    #[test]
    fn unknown_field_is_rejected() {
        assert!(matches!(q(r#"{"id":1,"rnks":8}"#), Err(ServeError::BadRequest(_))));
    }

    #[test]
    fn missing_id_is_rejected() {
        assert!(matches!(q(r#"{"ranks":8}"#), Err(ServeError::BadRequest(_))));
    }

    #[test]
    fn fti_geometry_is_validated() {
        // 12 ranks is not a multiple of group_size*node_size = 8.
        let e = q(r#"{"id":1,"ranks":12,"ft_period":5}"#);
        assert!(matches!(e, Err(ServeError::BadRequest(_))), "{e:?}");
        // …but is fine without checkpointing.
        assert!(q(r#"{"id":1,"ranks":12,"ft_period":0}"#).is_ok());
    }

    #[test]
    fn baseline_key_ignores_overlay_fields() {
        let a = q(r#"{"id":1,"seed":11,"mode":"online"}"#).expect("parses");
        let b = q(r#"{"id":2,"seed":99,"mode":"baseline","deadline_ms":50}"#).expect("parses");
        assert_eq!(a.baseline_key(), b.baseline_key());
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fingerprint_ignores_id_and_deadline() {
        let a = q(r#"{"id":1,"seed":11,"deadline_ms":5}"#).expect("parses");
        let b = q(r#"{"id":2,"seed":11,"deadline_ms":99}"#).expect("parses");
        assert_eq!(a.fingerprint(), b.fingerprint());
    }
}
