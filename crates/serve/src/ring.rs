//! Deterministic consistent-hash ring for shard routing.
//!
//! The cluster layer ([`crate::cluster`]) places every query fingerprint
//! (and every baseline cache key) on a hash ring shared by all shards.
//! Each shard contributes `vnodes` points, hashed from
//! `(seed, shard, vnode)` with the same SplitMix64 finalizer the rest of
//! the stack uses — placement is a pure function of the ring seed, so two
//! server instances built with the same seed route identically without
//! ever talking to each other.
//!
//! Routing a key walks the ring clockwise from the key's hash and
//! collects *distinct* shards in encounter order. The first `r` of them
//! are the key's owners (primary first); if the primary is dead, the
//! caller simply keeps walking, which is what makes failover "cost
//! routing, not correctness": when a shard dies, only the keys it owned
//! move — everything else keeps its primary (see the minimal-movement
//! test in `tests/ring_properties.rs`).

use crate::query::mix;

/// Domain separator folded into every ring-point hash so ring placement
/// can never collide with fingerprint or cache-key hashing.
const RING_DOMAIN: u64 = 0x52494e47_42455354; // "RING" "BEST"

/// A fixed, deterministic consistent-hash ring over `shards` shards.
///
/// Immutable after construction: shard death and rejoin are *routing*
/// decisions (skip dead shards while walking), not ring mutations, so
/// a rejoined shard gets exactly its old keys back.
#[derive(Debug, Clone)]
pub struct Ring {
    /// `(point hash, shard)` sorted by hash; ties broken by shard index
    /// (deterministic even in the astronomically unlikely collision).
    points: Vec<(u64, u32)>,
    shards: u32,
}

impl Ring {
    /// Build the ring for `shards` shards with `vnodes` points each.
    /// Both are clamped to at least 1.
    pub fn new(seed: u64, shards: u32, vnodes: u32) -> Self {
        let shards = shards.max(1);
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity((shards as usize) * (vnodes as usize));
        for shard in 0..shards {
            for vnode in 0..vnodes {
                let h = mix(mix(seed ^ RING_DOMAIN, shard as u64 + 1), vnode as u64 + 1);
                points.push((h, shard));
            }
        }
        points.sort_unstable();
        Ring { points, shards }
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// All shards in ring order starting at `key`'s position, each shard
    /// once (first = primary owner). The full order matters to the
    /// cluster: when every configured owner of a key is dead, routing
    /// keeps walking past the replication factor so the batch still
    /// completes — a non-owner computing an answer costs cache locality,
    /// never correctness.
    pub fn successor_order(&self, key: u64) -> Vec<u32> {
        let kh = mix(RING_DOMAIN, key);
        let start = self.points.partition_point(|&(h, _)| h < kh);
        let mut order = Vec::with_capacity(self.shards as usize);
        let mut seen = vec![false; self.shards as usize];
        for i in 0..self.points.len() {
            let (_, shard) = self.points[(start + i) % self.points.len()];
            if !seen[shard as usize] {
                seen[shard as usize] = true;
                order.push(shard);
                if order.len() == self.shards as usize {
                    break;
                }
            }
        }
        order
    }

    /// The first `r` distinct shards clockwise from `key` — the key's
    /// owner set, primary first. `r` is clamped to `[1, shards]`.
    pub fn owners(&self, key: u64, r: u32) -> Vec<u32> {
        let r = r.clamp(1, self.shards) as usize;
        let mut order = self.successor_order(key);
        order.truncate(r);
        order
    }

    /// The primary owner of `key`.
    pub fn primary(&self, key: u64) -> u32 {
        self.successor_order(key)[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_owns_everything() {
        let ring = Ring::new(7, 1, 16);
        for k in 0..64u64 {
            assert_eq!(ring.owners(mix(1, k), 3), vec![0]);
        }
    }

    #[test]
    fn owners_are_distinct_and_primary_first() {
        let ring = Ring::new(0xBE57, 5, 32);
        for k in 0..256u64 {
            let key = mix(2, k);
            let owners = ring.owners(key, 3);
            assert_eq!(owners.len(), 3);
            assert_eq!(owners[0], ring.primary(key));
            let mut sorted = owners.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "owners must be distinct: {owners:?}");
        }
    }

    #[test]
    fn successor_order_is_a_permutation_of_all_shards() {
        let ring = Ring::new(3, 6, 8);
        let mut order = ring.successor_order(0xDEAD_BEEF);
        assert_eq!(order.len(), 6);
        order.sort_unstable();
        assert_eq!(order, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn replication_clamps_to_shard_count() {
        let ring = Ring::new(11, 3, 8);
        assert_eq!(ring.owners(42, 0).len(), 1);
        assert_eq!(ring.owners(42, 9).len(), 3);
    }
}
