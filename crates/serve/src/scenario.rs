//! Scenario execution: turn a validated [`ScenarioQuery`] into numbers.
//!
//! Two-phase split mirrors the DSE overlay machinery and is what makes
//! the cache worth having:
//!
//! 1. **Baseline** ([`compute_baseline`]) — simulate the fault-free run
//!    on the BE-SST simulator (`monte_carlo: false`, so seed-free and
//!    bit-reproducible) and distill it to the replayable [`Timeline`].
//!    This is the expensive, cacheable artifact.
//! 2. **Overlay** ([`run_overlay`]) — replay the timeline under online
//!    fail-stop injection with the query's seed. Cheap (no kernel-model
//!    evaluation), so thousands of overlay queries share one baseline.

use crate::query::{AppKind, MachineKind, QueryMode, ScenarioQuery};
use crate::ServeError;
use besst_core::beo::ArchBeo;
use besst_core::faults::{FaultProcess, Timeline};
use besst_core::online::{run_online, OnlineConfig, RunClass};
use besst_core::sim::{simulate, EngineKind, SimConfig};
use besst_fti::{CkptLevel, FtiConfig, GroupLayout};
use besst_models::{Interpolation, ModelBundle, PerfModel, SampleTable};

/// The cacheable artifact: a fault-free timeline plus its makespan.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// The replayable fault-free trace.
    pub timeline: Timeline,
    /// Failure-free makespan, seconds.
    pub baseline_s: f64,
}

/// The answer to one query, ready for response rendering.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryAnswer {
    /// Failure-free makespan of the scenario, seconds.
    pub baseline_s: f64,
    /// Makespan under the requested mode (== `baseline_s` for baseline
    /// queries), seconds.
    pub makespan_s: f64,
    /// Crashes struck during the overlay (0 for baseline queries).
    pub n_faults: u32,
    /// Whether the overlay run completed within its fault budget.
    pub completed: bool,
    /// Data-integrity class of the run ("Correct" for baseline).
    pub class: &'static str,
}

/// Per-machine cost scaling: step-time multiplier (core speed) and
/// checkpoint-time multiplier (I/O path). Quartz is the reference;
/// Vulcan's BG/Q cores and torus I/O are slower.
fn machine_scale(m: MachineKind) -> (f64, f64) {
    match m {
        MachineKind::Quartz => (1.0, 1.0),
        MachineKind::Vulcan => (2.5, 2.0),
    }
}

/// Reference per-step / per-L1-checkpoint seconds at problem size 10
/// (the bench crate's LULESH numbers; CMT-bone steps cost 2× for its
/// spectral operators).
const BASE_STEP_S: f64 = 0.01;
const BASE_CKPT_S: f64 = 0.002;

fn fti_for(q: &ScenarioQuery) -> FtiConfig {
    if q.ft_period > 0 {
        FtiConfig::l1_only(q.ft_period)
    } else {
        FtiConfig::none()
    }
}

fn arch_for(q: &ScenarioQuery) -> (ArchBeo, f64) {
    let (cpu_mult, io_mult) = machine_scale(q.machine);
    let size_scale = f64::from(q.problem_size) / 10.0;
    let app_mult = match q.app {
        AppKind::Cmtbone => 2.0,
        _ => 1.0,
    };
    let step_s = BASE_STEP_S * size_scale * cpu_mult * app_mult;
    let ckpt_s = BASE_CKPT_S * size_scale * io_mult;
    let mut bundle = ModelBundle::new();
    match q.app {
        AppKind::Lulesh | AppKind::Poison => {
            // LULESH kernels take (epr, ranks) parameters; a single
            // nearest-neighbour sample pins the cost for this scenario.
            let dims: [&str; 2] = ["epr", "ranks"];
            let at = [f64::from(q.problem_size), f64::from(q.ranks)];
            for (name, secs) in [
                (besst_apps::lulesh::kernels::TIMESTEP.to_string(), step_s),
                (besst_apps::lulesh::kernels::ckpt(CkptLevel::L1).to_string(), ckpt_s),
            ] {
                let mut t = SampleTable::new(&dims, Interpolation::Nearest);
                t.insert(&at, secs);
                bundle.insert(&name, PerfModel::Table(t));
            }
        }
        AppKind::Cmtbone => {
            // CMT-bone kernels take (epr, poly, ranks).
            let dims: [&str; 3] = ["epr", "poly", "ranks"];
            let at = [f64::from(q.problem_size), 3.0, f64::from(q.ranks)];
            for (name, secs) in [
                (besst_apps::cmtbone::kernels::TIMESTEP.to_string(), step_s),
                (besst_apps::cmtbone::kernels::ckpt(CkptLevel::L1), ckpt_s),
            ] {
                let mut t = SampleTable::new(&dims, Interpolation::Nearest);
                t.insert(&at, secs);
                bundle.insert(&name, PerfModel::Table(t));
            }
        }
    }
    let (machine, ranks_per_node) = match q.machine {
        MachineKind::Quartz => (besst_machine::presets::quartz(), 36),
        MachineKind::Vulcan => (besst_machine::presets::vulcan(), 16),
    };
    (ArchBeo::new(machine, ranks_per_node, bundle), ckpt_s)
}

/// Simulate the fault-free baseline for `q` on the BE-SST simulator.
///
/// A `poison` query panics here — deliberately, with no catch: worker
/// isolation is the server's job ([`crate::server`]), and the panic must
/// cross a real `catch_unwind` boundary to prove it works.
pub fn compute_baseline(q: &ScenarioQuery) -> Result<Baseline, ServeError> {
    if q.app == AppKind::Poison {
        // lint: allow(panic-path) -- the poison scenario exists to panic:
        // it is the isolation layer's test adversary, and converting it to
        // a typed error would leave catch_unwind untested.
        panic!("poison scenario {}: deliberate worker panic", q.fingerprint());
    }
    let fti = fti_for(q);
    let (arch, ckpt_s) = arch_for(q);
    let app = match q.app {
        AppKind::Lulesh | AppKind::Poison => {
            let cfg = besst_apps::LuleshConfig::new(q.problem_size, q.ranks);
            besst_apps::lulesh::appbeo(&cfg, &fti, q.steps)
        }
        AppKind::Cmtbone => {
            let cfg = besst_apps::CmtBoneConfig::new(q.problem_size, 3, q.ranks);
            besst_apps::cmtbone::appbeo_ft(&cfg, &fti, q.steps)
        }
    };
    let sim_cfg = SimConfig {
        seed: 0,
        monte_carlo: false,
        engine: EngineKind::Sequential,
        ..Default::default()
    };
    let res = simulate(&app, &arch, &sim_cfg).map_err(|e| ServeError::Sim(e.to_string()))?;
    let restart_costs = if q.ft_period > 0 {
        // Restarting from an L1 checkpoint costs a read-back plus
        // re-initialization: 2× the write, the bench crate's convention.
        vec![(CkptLevel::L1, 2.0 * ckpt_s)]
    } else {
        Vec::new()
    };
    let timeline =
        Timeline::from_completions(&res.step_completions, &res.ckpt_completions, restart_costs);
    Ok(Baseline { timeline, baseline_s: res.total_seconds })
}

/// Answer `q` given its (possibly cached) baseline.
pub fn run_overlay(q: &ScenarioQuery, baseline: &Baseline) -> Result<QueryAnswer, ServeError> {
    match q.mode {
        QueryMode::Baseline => Ok(QueryAnswer {
            baseline_s: baseline.baseline_s,
            makespan_s: baseline.baseline_s,
            n_faults: 0,
            completed: true,
            class: "Correct",
        }),
        QueryMode::Online => {
            let n_nodes = 2u32;
            let mtbf = if q.mtbf > 0.0 {
                q.mtbf
            } else {
                // Bench default: a handful of crashes per replay.
                baseline.baseline_s * f64::from(n_nodes) / 3.0
            };
            let process = FaultProcess::new(mtbf, n_nodes, 0.3);
            let layout = if q.ft_period > 0 {
                Some(GroupLayout::new(&FtiConfig::l1_only(q.ft_period), q.ranks))
            } else {
                None
            };
            let cfg = OnlineConfig::new(process, layout);
            let run = run_online(&baseline.timeline, &cfg, q.seed, EngineKind::Sequential)
                .map_err(|e| ServeError::Sim(e.to_string()))?;
            Ok(QueryAnswer {
                baseline_s: baseline.baseline_s,
                makespan_s: run.makespan,
                n_faults: run.n_faults,
                completed: run.completed,
                class: class_name(run.class),
            })
        }
    }
}

fn class_name(c: RunClass) -> &'static str {
    match c {
        RunClass::Correct => "Correct",
        RunClass::CorrectedByAbft { .. } => "CorrectedByAbft",
        RunClass::RolledBack { .. } => "RolledBack",
        RunClass::SilentlyWrong { .. } => "SilentlyWrong",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn query(text: &str) -> ScenarioQuery {
        ScenarioQuery::from_value(&parse(text).expect("valid JSON")).expect("valid query")
    }

    #[test]
    fn baseline_is_seed_free_and_deterministic() {
        let a = compute_baseline(&query(r#"{"id":1,"steps":20,"seed":7}"#)).expect("runs");
        let b = compute_baseline(&query(r#"{"id":2,"steps":20,"seed":8}"#)).expect("runs");
        assert_eq!(a, b, "baseline must not depend on id or seed");
        assert!(a.baseline_s > 0.0);
        assert_eq!(a.timeline.step_durations.len(), 20);
        assert_eq!(a.timeline.checkpoints.len(), 2);
    }

    #[test]
    fn overlay_runs_and_differs_by_seed() {
        let q1 = query(r#"{"id":1,"steps":30,"seed":3}"#);
        let base = compute_baseline(&q1).expect("runs");
        let a = run_overlay(&q1, &base).expect("overlay runs");
        assert!(a.makespan_s >= a.baseline_s);
        let q2 = query(r#"{"id":1,"steps":30,"seed":4}"#);
        let b = run_overlay(&q2, &base).expect("overlay runs");
        // Different seeds draw different crash schedules; the makespans
        // are allowed to coincide but the runs must both be well-formed.
        assert!(b.makespan_s >= b.baseline_s);
    }

    #[test]
    fn no_ft_scenario_still_answers() {
        let q = query(r#"{"id":1,"steps":15,"ft_period":0,"seed":5}"#);
        let base = compute_baseline(&q).expect("runs");
        assert!(base.timeline.checkpoints.is_empty());
        let a = run_overlay(&q, &base).expect("overlay runs");
        assert!(a.makespan_s >= a.baseline_s);
    }

    #[test]
    fn cmtbone_and_vulcan_cost_more() {
        let cheap = compute_baseline(&query(r#"{"id":1,"steps":10}"#)).expect("runs");
        let slow = compute_baseline(&query(
            r#"{"id":1,"steps":10,"machine":"vulcan","app":"cmtbone"}"#,
        ))
        .expect("runs");
        assert!(slow.baseline_s > cheap.baseline_s);
    }

    #[test]
    #[should_panic(expected = "poison scenario")]
    fn poison_panics() {
        let _ = compute_baseline(&query(r#"{"id":1,"app":"poison"}"#));
    }
}
