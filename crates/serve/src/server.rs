//! The hardened batch engine: admission, isolation, retries, quarantine.
//!
//! [`Server::handle_batch`] upholds the server's core invariant —
//! **exactly one [`Response`] per input query**, whatever happens inside
//! a worker. The four robustness layers from the crate docs live here:
//! bounded admission with load shedding, `catch_unwind` isolation with
//! a deterministic quarantine, soft deadlines with bounded
//! exponential-backoff retries, and (when configured) chaos injection
//! against the server's own workers and cache.
//!
//! Determinism contract (what the chaos harness asserts): quarantine
//! decisions are taken against the state *before* the batch and
//! committed in input order *after* it, so responses never depend on
//! worker scheduling; deadlines gate retries and admission-to-run, never
//! a completed answer, so bounded injected delays cannot flip a success
//! into a timeout.

use crate::cache::{CacheStats, Lookup};
use crate::chaos::{Chaos, ChaosStats};
use crate::cluster::{Cluster, ClusterConfig, ClusterStats};
use crate::query::ScenarioQuery;
use crate::scenario::{compute_baseline, run_overlay, QueryAnswer};
use crate::ServeError;
use parking_lot::Mutex;
use rayon::prelude::*;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Server tuning knobs. [`Default`] is sized for tests and the smoke
/// batch; the `besst serve` binary exposes the interesting ones as
/// flags.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads in the rayon pool (0 = one per core).
    pub workers: usize,
    /// Admission bound: queries per batch beyond this are shed with
    /// [`ServeError::Overloaded`].
    pub queue_capacity: usize,
    /// Baselines the cache retains.
    pub cache_capacity: usize,
    /// Default per-query soft deadline, ms (a query may lower or raise
    /// its own via `deadline_ms`).
    pub deadline_ms: u64,
    /// Per-batch budget, ms: queries whose turn comes after it expires
    /// are answered with explicit [`ServeError::Timeout`] markers.
    pub batch_budget_ms: u64,
    /// Retry attempts after a transient (panic) failure.
    pub max_retries: u32,
    /// Base backoff before the first retry, µs; doubles per retry with
    /// deterministic seeded jitter.
    pub backoff_base_us: u64,
    /// Retry-exhausted failures on one fingerprint before it is
    /// quarantined (fast-failed without running).
    pub quarantine_threshold: u32,
    /// Shard topology and failure-detector tuning. The default
    /// ([`ClusterConfig::single`]) is one shard owning everything —
    /// exactly the classic single-process server.
    pub cluster: ClusterConfig,
    /// Self-fault-injection; `None` runs fault-free.
    pub chaos: Option<Chaos>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            queue_capacity: 4096,
            cache_capacity: 64,
            deadline_ms: 10_000,
            batch_budget_ms: 60_000,
            max_retries: 8,
            backoff_base_us: 50,
            quarantine_threshold: 2,
            cluster: ClusterConfig::single(),
            chaos: None,
        }
    }
}

/// Ceiling for the [`ServeError::Overloaded`] retry-after hint, ms. The
/// hint grows linearly with a query's overflow position so shed clients
/// spread their resubmissions, but a pathological batch must not tell
/// anyone to wait minutes — past this depth every hint saturates here.
pub const RETRY_AFTER_CAP_MS: u64 = 1_000;

/// What happened to one query.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// The query ran to completion.
    Ok {
        /// The computed numbers.
        answer: QueryAnswer,
        /// Whether the baseline came from the cache.
        cached: bool,
        /// Retries spent (0 on the fault-free path).
        retries: u32,
    },
    /// The query failed; see [`ServeError`] for the taxonomy.
    Err(ServeError),
}

/// Exactly one of these per input query.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The query's caller-chosen id, echoed back.
    pub id: u64,
    /// The outcome.
    pub outcome: Outcome,
}

/// Server-level counters snapshot (cache and chaos counters ride along).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Queries received across all batches.
    pub received: u64,
    /// Queries shed by admission control.
    pub shed: u64,
    /// Queries answered `ok`.
    pub ok: u64,
    /// Queries answered with an error of any kind.
    pub errors: u64,
    /// Timeout markers issued.
    pub timeouts: u64,
    /// Quarantine fast-fails issued.
    pub quarantined: u64,
    /// Worker panics caught (every attempt, retried or not).
    pub panics_caught: u64,
    /// Retries spent across all queries.
    pub retries: u64,
}

#[derive(Debug, Default)]
struct Counters {
    received: AtomicU64,
    shed: AtomicU64,
    ok: AtomicU64,
    errors: AtomicU64,
    timeouts: AtomicU64,
    quarantined: AtomicU64,
    panics_caught: AtomicU64,
    retries: AtomicU64,
}

/// The scenario server: owns the worker pool and the shard cluster
/// (which in turn owns every cache and quarantine map — one of each per
/// shard; see [`crate::cluster`]).
pub struct Server {
    cfg: ServeConfig,
    pool: rayon::ThreadPool,
    cluster: Cluster,
    counters: Counters,
}

/// Post-batch quarantine bookkeeping for one query, committed in input
/// order so outcomes never depend on worker scheduling.
enum LedgerEntry {
    /// Ran to a verdict: record success (reset) or exhausted failure.
    Ran {
        /// The query's fingerprint.
        fp: u64,
        /// Whether the verdict was an exhausted (permanent) failure.
        exhausted: bool,
    },
    /// Shed, fast-failed, or timed out without running: no change.
    Untouched,
}

impl Server {
    /// Build a server. Fails if the worker pool cannot start or the
    /// cluster config is degenerate.
    pub fn new(cfg: ServeConfig) -> Result<Server, ServeError> {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(cfg.workers)
            .thread_name(|i| format!("besst-serve-{i}"))
            .build()
            .map_err(|e| ServeError::Internal(format!("worker pool: {e}")))?;
        let cluster = Cluster::new(cfg.cluster, cfg.cache_capacity)?;
        Ok(Server { cfg, pool, cluster, counters: Counters::default() })
    }

    /// The configuration the server runs with.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Handle one batch, returning responses in input order.
    pub fn handle_batch(&self, queries: &[ScenarioQuery]) -> Vec<Response> {
        let slots: Vec<Mutex<Option<Response>>> =
            queries.iter().map(|_| Mutex::new(None)).collect();
        self.handle_batch_indexed(queries, &|idx, resp| {
            *slots[idx].lock() = Some(resp);
        });
        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.into_inner().unwrap_or_else(|| Response {
                    // Unreachable by construction (every index is answered
                    // exactly once); a typed error beats a panic if the
                    // invariant ever regresses.
                    id: queries[i].id,
                    outcome: Outcome::Err(ServeError::Internal(
                        "query produced no response".into(),
                    )),
                })
            })
            .collect()
    }

    /// Handle one batch, streaming each response as it completes
    /// (completion order; the `usize` is the query's input index).
    pub fn handle_batch_indexed(
        &self,
        queries: &[ScenarioQuery],
        sink: &(dyn Fn(usize, Response) + Sync),
    ) {
        let batch_start = Instant::now();
        let budget = Duration::from_millis(self.cfg.batch_budget_ms);
        self.counters.received.fetch_add(queries.len() as u64, Ordering::Relaxed);

        // Quarantine snapshot: decisions for this whole batch are taken
        // against pre-batch state (determinism contract, module docs).
        // The cluster merges the per-shard maps of every currently-alive
        // shard; alive owners agree on every key, so this equals the
        // single-map view (see `crate::cluster` docs).
        let pre_quarantine: BTreeMap<u64, u32> = self.cluster.quarantine_snapshot();
        let ledger: Vec<Mutex<LedgerEntry>> =
            queries.iter().map(|_| Mutex::new(LedgerEntry::Untouched)).collect();

        let admitted = queries.len().min(self.cfg.queue_capacity);
        // Shed the tail beyond the admission bound up front: flat,
        // immediate Overloaded responses instead of queue collapse.
        for (idx, q) in queries.iter().enumerate().skip(admitted) {
            let overflow = (idx - admitted) as u64;
            let retry_after_ms =
                10u64.saturating_add(overflow.saturating_mul(5)).min(RETRY_AFTER_CAP_MS);
            self.counters.shed.fetch_add(1, Ordering::Relaxed);
            self.counters.errors.fetch_add(1, Ordering::Relaxed);
            sink(idx, Response {
                id: q.id,
                outcome: Outcome::Err(ServeError::Overloaded { retry_after_ms }),
            });
        }

        self.pool.install(|| {
            queries[..admitted].par_iter().enumerate().for_each(|(idx, q)| {
                let (resp, entry) = self.run_one(q, batch_start, budget, &pre_quarantine);
                *ledger[idx].lock() = entry;
                self.count_outcome(&resp.outcome);
                sink(idx, resp);
            });
        });

        // Commit quarantine deltas in input order, replicated to every
        // alive owner of each fingerprint.
        for slot in ledger {
            if let LedgerEntry::Ran { fp, exhausted } = slot.into_inner() {
                self.cluster.commit_quarantine(fp, exhausted);
            }
        }
    }

    fn count_outcome(&self, outcome: &Outcome) {
        match outcome {
            Outcome::Ok { retries, .. } => {
                self.counters.ok.fetch_add(1, Ordering::Relaxed);
                self.counters.retries.fetch_add(u64::from(*retries), Ordering::Relaxed);
            }
            Outcome::Err(e) => {
                self.counters.errors.fetch_add(1, Ordering::Relaxed);
                match e {
                    ServeError::Timeout { .. } => {
                        self.counters.timeouts.fetch_add(1, Ordering::Relaxed);
                    }
                    ServeError::Quarantined { .. } => {
                        self.counters.quarantined.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {}
                }
            }
        }
    }

    /// Run one admitted query to a verdict.
    fn run_one(
        &self,
        q: &ScenarioQuery,
        batch_start: Instant,
        budget: Duration,
        pre_quarantine: &BTreeMap<u64, u32>,
    ) -> (Response, LedgerEntry) {
        let fp = q.fingerprint();
        if let Some(&failures) = pre_quarantine.get(&fp) {
            if failures >= self.cfg.quarantine_threshold {
                return (
                    Response { id: q.id, outcome: Outcome::Err(ServeError::Quarantined { failures }) },
                    LedgerEntry::Untouched,
                );
            }
        }
        let deadline_ms =
            if q.deadline_ms > 0 { q.deadline_ms } else { self.cfg.deadline_ms };
        let deadline = Duration::from_millis(deadline_ms);
        let timeout = ServeError::Timeout { deadline_ms };
        if batch_start.elapsed() > budget {
            // Batch budget already gone: explicit marker, never a stall.
            return (
                Response { id: q.id, outcome: Outcome::Err(timeout) },
                LedgerEntry::Untouched,
            );
        }
        let query_start = Instant::now();
        let mut retries = 0u32;
        // Shards that already failed *this query* with ShardLost. A
        // reroute to a fresh shard costs no retry budget — losing a
        // shard must not burn the retries a good query may still need —
        // so storms are bounded by the avoid set instead: once every
        // shard has failed the query once, the set clears and a real
        // retry is spent, so a cluster-wide permanent storm still
        // terminates in max_retries rounds.
        let mut avoided: Vec<u32> = Vec::new();
        loop {
            let shard = self.cluster.route(fp, &avoided);
            let attempt_result = self.attempt(q, fp, shard, retries);
            match attempt_result {
                Ok((answer, cached)) => {
                    self.cluster.record_success(shard);
                    return (
                        Response {
                            id: q.id,
                            outcome: Outcome::Ok { answer, cached, retries },
                        },
                        LedgerEntry::Ran { fp, exhausted: false },
                    );
                }
                Err(ServeError::ShardLost { shard: lost }) => {
                    self.cluster.record_failure(lost);
                    if query_start.elapsed() > deadline || batch_start.elapsed() > budget {
                        return (
                            Response { id: q.id, outcome: Outcome::Err(timeout) },
                            LedgerEntry::Untouched,
                        );
                    }
                    let all_failed = avoided.contains(&lost)
                        || avoided.len() as u32 + 1 >= self.cfg.cluster.shards;
                    if !all_failed {
                        avoided.push(lost);
                    } else if retries < self.cfg.max_retries {
                        avoided.clear();
                        std::thread::sleep(self.backoff(fp, retries));
                        retries += 1;
                    } else {
                        return (
                            Response {
                                id: q.id,
                                outcome: Outcome::Err(ServeError::ShardLost { shard: lost }),
                            },
                            LedgerEntry::Ran { fp, exhausted: true },
                        );
                    }
                }
                Err(e) if e.transient() && retries < self.cfg.max_retries => {
                    if query_start.elapsed() > deadline || batch_start.elapsed() > budget {
                        // Out of time mid-retry: degrade to a marker.
                        return (
                            Response { id: q.id, outcome: Outcome::Err(timeout) },
                            LedgerEntry::Untouched,
                        );
                    }
                    std::thread::sleep(self.backoff(fp, retries));
                    retries += 1;
                }
                Err(e) => {
                    let exhausted = e.transient(); // retries used up
                    return (
                        Response { id: q.id, outcome: Outcome::Err(e) },
                        LedgerEntry::Ran { fp, exhausted },
                    );
                }
            }
        }
    }

    /// One isolated attempt on `shard`: shard-storm roll, chaos
    /// delay/crash, cache probe, baseline compute, overlay — all under
    /// `catch_unwind`.
    fn attempt(
        &self,
        q: &ScenarioQuery,
        fp: u64,
        shard: u32,
        attempt: u32,
    ) -> Result<(QueryAnswer, bool), ServeError> {
        let result =
            catch_unwind(AssertUnwindSafe(|| self.attempt_inner(q, fp, shard, attempt)));
        match result {
            Ok(r) => r,
            Err(payload) => {
                self.counters.panics_caught.fetch_add(1, Ordering::Relaxed);
                let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "non-string panic payload".to_string()
                };
                Err(ServeError::Panic(msg))
            }
        }
    }

    fn attempt_inner(
        &self,
        q: &ScenarioQuery,
        fp: u64,
        shard: u32,
        attempt: u32,
    ) -> Result<(QueryAnswer, bool), ServeError> {
        if let Some(chaos) = &self.cfg.chaos {
            // A storming shard fails the attempt *as a typed error*, not
            // a panic: the caller must learn which shard to avoid, and
            // the failure detector must only ever see shard-attributed
            // failures.
            if chaos.shard_crashes(shard, fp, attempt) {
                return Err(ServeError::ShardLost { shard });
            }
            if let Some(delay) = chaos.worker_delay(fp, attempt) {
                std::thread::sleep(delay);
            }
            if chaos.worker_crashes(fp, attempt) {
                // lint: allow(panic-path) -- deliberate self-fault-injection:
                // the panic must cross the catch_unwind boundary above to
                // exercise the isolation layer for real.
                panic!("buggify: injected worker crash (fp={fp:#x}, attempt={attempt})");
            }
        }
        let key = q.baseline_key();
        let (baseline, cached) = match self.cluster.cache_lookup(key) {
            Lookup::Hit(b) => (b, true),
            // Corrupt and Miss take the same recompute path: corruption
            // costs latency, never answers.
            Lookup::Corrupt | Lookup::Miss => {
                let b = compute_baseline(q)?;
                self.cluster.cache_insert(key, &b);
                if let Some(chaos) = &self.cfg.chaos {
                    if let Some(bit) = chaos.corrupts_cache(key) {
                        self.cluster.corrupt_cache(key, bit);
                    }
                }
                (b, false)
            }
        };
        let answer = run_overlay(q, &baseline)?;
        Ok((answer, cached))
    }

    /// Deterministic exponential backoff with seeded jitter: attempt `n`
    /// waits `base * 2^n + jitter(fp, n)` µs, capped at 5 ms.
    fn backoff(&self, fp: u64, attempt: u32) -> Duration {
        let base = self.cfg.backoff_base_us.max(1);
        let exp = base.saturating_mul(1u64 << attempt.min(16));
        let seed = self.cfg.chaos.as_ref().map_or(0xBE57, |c| c.seed());
        let jitter = crate::query::mix(seed ^ fp, u64::from(attempt)) % base;
        Duration::from_micros((exp + jitter).min(5_000))
    }

    /// Server counters snapshot.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            received: self.counters.received.load(Ordering::Relaxed),
            shed: self.counters.shed.load(Ordering::Relaxed),
            ok: self.counters.ok.load(Ordering::Relaxed),
            errors: self.counters.errors.load(Ordering::Relaxed),
            timeouts: self.counters.timeouts.load(Ordering::Relaxed),
            quarantined: self.counters.quarantined.load(Ordering::Relaxed),
            panics_caught: self.counters.panics_caught.load(Ordering::Relaxed),
            retries: self.counters.retries.load(Ordering::Relaxed),
        }
    }

    /// Cache counters snapshot, summed across shards.
    pub fn cache_stats(&self) -> CacheStats {
        self.cluster.cache_stats()
    }

    /// Cluster counters snapshot (shard health, deaths, rejoins,
    /// failovers).
    pub fn cluster_stats(&self) -> ClusterStats {
        self.cluster.stats()
    }

    /// The shard cluster, for tests that probe health and routing.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Chaos counters snapshot (zeroes when running fault-free).
    pub fn chaos_stats(&self) -> ChaosStats {
        self.cfg.chaos.as_ref().map(Chaos::stats).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn query(text: &str) -> ScenarioQuery {
        ScenarioQuery::from_value(&parse(text).expect("valid JSON")).expect("valid query")
    }

    fn quiet_server(cfg: ServeConfig) -> Server {
        Server::new(cfg).expect("pool starts")
    }

    #[test]
    fn batch_answers_every_query_in_order() {
        let s = quiet_server(ServeConfig::default());
        let qs: Vec<ScenarioQuery> = (0..6)
            .map(|i| query(&format!(r#"{{"id":{i},"steps":10,"seed":{i}}}"#)))
            .collect();
        let resps = s.handle_batch(&qs);
        assert_eq!(resps.len(), 6);
        for (i, r) in resps.iter().enumerate() {
            assert_eq!(r.id, i as u64);
            assert!(matches!(r.outcome, Outcome::Ok { .. }), "{r:?}");
        }
    }

    #[test]
    fn identical_configs_share_one_baseline() {
        let s = quiet_server(ServeConfig::default());
        let qs: Vec<ScenarioQuery> =
            (0..8).map(|i| query(&format!(r#"{{"id":{i},"steps":10,"seed":{i}}}"#))).collect();
        let _ = s.handle_batch(&qs);
        let cs = s.cache_stats();
        // One miss computes the baseline; every other query hits it
        // (modulo races where two workers miss concurrently, which can
        // only *lower* the hit count by re-computing, never corrupt it).
        assert!(cs.hits >= 1, "{cs:?}");
        assert_eq!(cs.corruptions, 0);
    }

    #[test]
    fn poison_is_isolated_then_quarantined() {
        let cfg =
            ServeConfig { max_retries: 2, quarantine_threshold: 1, ..ServeConfig::default() };
        let s = quiet_server(cfg);
        let poison = query(r#"{"id":1,"app":"poison"}"#);
        let good = query(r#"{"id":2,"steps":10}"#);

        let first = s.handle_batch(std::slice::from_ref(&poison));
        assert!(
            matches!(&first[0].outcome, Outcome::Err(ServeError::Panic(m)) if m.contains("poison")),
            "{first:?}"
        );
        // The server survived; the same fingerprint now fast-fails while
        // good queries still run.
        let second = s.handle_batch(&[poison.clone(), good]);
        assert!(
            matches!(second[0].outcome, Outcome::Err(ServeError::Quarantined { .. })),
            "{second:?}"
        );
        assert!(matches!(second[1].outcome, Outcome::Ok { .. }), "{second:?}");
        assert!(s.stats().panics_caught >= 3, "every attempt is caught");
    }

    #[test]
    fn overload_sheds_with_retry_hints() {
        let cfg = ServeConfig { queue_capacity: 3, ..ServeConfig::default() };
        let s = quiet_server(cfg);
        let qs: Vec<ScenarioQuery> =
            (0..7).map(|i| query(&format!(r#"{{"id":{i},"steps":20}}"#))).collect();
        let resps = s.handle_batch(&qs);
        let shed: Vec<&Response> = resps
            .iter()
            .filter(|r| matches!(r.outcome, Outcome::Err(ServeError::Overloaded { .. })))
            .collect();
        assert_eq!(shed.len(), 4);
        assert_eq!(s.stats().shed, 4);
        // Later overflow positions get longer retry-after hints.
        if let (
            Outcome::Err(ServeError::Overloaded { retry_after_ms: a }),
            Outcome::Err(ServeError::Overloaded { retry_after_ms: b }),
        ) = (&shed[0].outcome, &shed[3].outcome)
        {
            assert!(b > a);
        }
    }

    #[test]
    fn exhausted_budget_degrades_to_timeout_markers() {
        // Budget gone before the batch starts.
        let cfg = ServeConfig { batch_budget_ms: 0, ..ServeConfig::default() };
        let s = quiet_server(cfg);
        let qs: Vec<ScenarioQuery> =
            (0..3).map(|i| query(&format!(r#"{{"id":{i},"steps":20}}"#))).collect();
        let resps = s.handle_batch(&qs);
        assert!(resps
            .iter()
            .all(|r| matches!(r.outcome, Outcome::Err(ServeError::Timeout { .. }))));
        assert_eq!(s.stats().timeouts, 3);
    }

    #[test]
    fn retry_after_hint_is_capped() {
        // Deep overflow: uncapped, position 300 would ask for
        // 10 + 5*297 = 1495 ms.
        let cfg = ServeConfig { queue_capacity: 2, ..ServeConfig::default() };
        let s = quiet_server(cfg);
        let qs: Vec<ScenarioQuery> =
            (0..300).map(|i| query(&format!(r#"{{"id":{i},"steps":10}}"#))).collect();
        let resps = s.handle_batch(&qs);
        let hints: Vec<u64> = resps
            .iter()
            .filter_map(|r| match r.outcome {
                Outcome::Err(ServeError::Overloaded { retry_after_ms }) => Some(retry_after_ms),
                _ => None,
            })
            .collect();
        assert_eq!(hints.len(), 298);
        assert_eq!(hints[0], 10, "first overflow position keeps the small hint");
        assert_eq!(*hints.last().unwrap(), RETRY_AFTER_CAP_MS, "deep overflow saturates");
        assert!(hints.iter().all(|&h| h <= RETRY_AFTER_CAP_MS));
    }

    #[test]
    fn sharded_batch_answers_like_single_shard() {
        let single = quiet_server(ServeConfig::default());
        let sharded = quiet_server(ServeConfig {
            cluster: crate::cluster::ClusterConfig::sharded(4),
            ..ServeConfig::default()
        });
        let qs: Vec<ScenarioQuery> = (0..24)
            .map(|i| query(&format!(r#"{{"id":{i},"steps":10,"seed":{}}}"#, i % 5)))
            .collect();
        let a = single.handle_batch(&qs);
        let b = sharded.handle_batch(&qs);
        assert_eq!(a, b, "shard routing must not change answers");
        assert_eq!(sharded.cluster_stats().alive, 4);
    }

    #[test]
    fn storming_shard_reroutes_without_burning_retries() {
        // Find a storm seed where at least one of 4 shards storms and at
        // least one stays calm, so rerouting always has a target.
        let seed = (0..512u64)
            .find(|&s| {
                let c = Chaos::storm(s);
                let n = (0..4).filter(|&sh| c.shard_storms(sh)).count();
                (1..4).contains(&n)
            })
            .expect("such a seed exists");
        let s = quiet_server(ServeConfig {
            cluster: crate::cluster::ClusterConfig::sharded(4),
            chaos: Some(Chaos::storm(seed)),
            ..ServeConfig::default()
        });
        let qs: Vec<ScenarioQuery> = (0..64)
            .map(|i| query(&format!(r#"{{"id":{i},"steps":10,"seed":{i}}}"#)))
            .collect();
        let resps = s.handle_batch(&qs);
        for r in &resps {
            assert!(
                !matches!(r.outcome, Outcome::Err(ServeError::ShardLost { .. })),
                "shard storms must reroute, not surface: {r:?}"
            );
        }
        let cs = s.cluster_stats();
        assert!(cs.shard_failures > 0, "the storm must actually have fired: {cs:?}");
        assert!(cs.failovers > 0, "failed attempts must have failed over: {cs:?}");
    }

    #[test]
    fn chaos_batch_still_answers_everything() {
        let cfg = ServeConfig { chaos: Some(Chaos::new(0xBE57_0007)), ..ServeConfig::default() };
        let s = quiet_server(cfg);
        let qs: Vec<ScenarioQuery> = (0..32)
            .map(|i| query(&format!(r#"{{"id":{i},"steps":10,"seed":{i}}}"#)))
            .collect();
        let resps = s.handle_batch(&qs);
        assert_eq!(resps.len(), 32);
        for r in &resps {
            assert!(matches!(r.outcome, Outcome::Ok { .. }), "{r:?}");
        }
    }
}
