//! Property tests for the cache-key canonicalization contract
//! (`ScenarioQuery::baseline_key` / `fingerprint`, see the module docs in
//! `src/query.rs`): field order and default elision never change a key,
//! every semantic field does, and overlay fields never touch the baseline
//! key. Hand-rolled generators on a fixed seed — the offline stub
//! registry carries no proptest, and a fixed seed makes a failure
//! replayable by running the test again.

use besst_serve::query::{defaults, AppKind, MachineKind, QueryMode, ScenarioQuery};
use besst_serve::{json, ServeError};
use std::collections::BTreeSet;

/// Deterministic SplitMix64 generator for the property trials.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
    fn coin(&mut self) -> bool {
        self.next() & 1 == 0
    }
    fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

/// A random *valid* query: ranks respect the FTI geometry (multiples of
/// the L1 group footprint), `ft_period <= steps`, everything in bounds.
fn arb_query(g: &mut Gen) -> ScenarioQuery {
    let ft_period = *g.pick(&[0u32, 5, 10, 25]);
    let steps = ft_period.max(1) * (1 + g.below(8) as u32);
    let q = ScenarioQuery {
        id: g.next(),
        machine: *g.pick(&[MachineKind::Quartz, MachineKind::Vulcan]),
        app: *g.pick(&[AppKind::Lulesh, AppKind::Cmtbone, AppKind::Poison]),
        problem_size: 1 + g.below(1000) as u32,
        ranks: *g.pick(&[8u32, 16, 64, 128, 512]),
        steps,
        ft_period,
        seed: g.next(),
        mode: *g.pick(&[QueryMode::Baseline, QueryMode::Online]),
        mtbf: *g.pick(&[0.0f64, 600.0, 3600.0, 86400.0]),
        deadline_ms: g.below(10_000),
    };
    q.validate().expect("generator only emits valid queries");
    q
}

/// Render `query` as a JSONL request with the fields in a shuffled order,
/// optionally eliding any field whose value equals its default (the two
/// spellings the canonicalization contract must not distinguish).
fn render(g: &mut Gen, q: &ScenarioQuery, elide_defaults: bool) -> String {
    let mut fields: Vec<(&str, String)> = vec![
        ("id", q.id.to_string()),
        ("machine", format!("\"{}\"", q.machine.name())),
        ("app", format!("\"{}\"", q.app.name())),
        ("problem_size", q.problem_size.to_string()),
        ("ranks", q.ranks.to_string()),
        ("steps", q.steps.to_string()),
        ("ft_period", q.ft_period.to_string()),
        ("seed", q.seed.to_string()),
        ("mode", format!("\"{}\"", q.mode.name())),
        ("mtbf", format!("{:.1}", q.mtbf)),
        ("deadline_ms", q.deadline_ms.to_string()),
    ];
    if elide_defaults {
        fields.retain(|(name, _)| match *name {
            "machine" => q.machine.name() != defaults::MACHINE || g.coin(),
            "app" => q.app.name() != defaults::APP || g.coin(),
            "problem_size" => q.problem_size != defaults::PROBLEM_SIZE || g.coin(),
            "ranks" => q.ranks != defaults::RANKS || g.coin(),
            "steps" => q.steps != defaults::STEPS || g.coin(),
            "ft_period" => q.ft_period != defaults::FT_PERIOD || g.coin(),
            "seed" => q.seed != defaults::SEED || g.coin(),
            "mode" => q.mode.name() != defaults::MODE || g.coin(),
            "mtbf" => q.mtbf != defaults::MTBF || g.coin(),
            "deadline_ms" => q.deadline_ms != defaults::DEADLINE_MS || g.coin(),
            _ => true,
        });
    }
    // Fisher-Yates on the retained fields.
    for i in (1..fields.len()).rev() {
        fields.swap(i, g.below(i as u64 + 1) as usize);
    }
    let body: Vec<String> =
        fields.iter().map(|(name, value)| format!("\"{name}\":{value}")).collect();
    format!("{{{}}}", body.join(","))
}

fn parse(text: &str) -> Result<ScenarioQuery, ServeError> {
    ScenarioQuery::from_value(&json::parse(text).expect("render emits valid JSON"))
}

const TRIALS: usize = 300;

#[test]
fn field_order_and_default_elision_never_change_the_key() {
    let mut g = Gen(0xCAFE_0001);
    for trial in 0..TRIALS {
        let q = arb_query(&mut g);
        let spelled = parse(&render(&mut g, &q, false)).expect("spelled-out parses");
        let elided = parse(&render(&mut g, &q, true)).expect("elided parses");
        assert_eq!(spelled, q, "trial {trial}: round-trip must be lossless");
        assert_eq!(elided, q, "trial {trial}: elided defaults must re-default");
        assert_eq!(
            spelled.baseline_key(),
            elided.baseline_key(),
            "trial {trial}: spelling must not change the baseline key"
        );
        assert_eq!(
            spelled.fingerprint(),
            elided.fingerprint(),
            "trial {trial}: spelling must not change the fingerprint"
        );
    }
}

#[test]
fn every_semantic_field_changes_the_key() {
    let mut g = Gen(0xCAFE_0002);
    for trial in 0..TRIALS {
        let q = arb_query(&mut g);
        let mutants: Vec<(&str, ScenarioQuery)> = vec![
            (
                "machine",
                ScenarioQuery {
                    machine: match q.machine {
                        MachineKind::Quartz => MachineKind::Vulcan,
                        MachineKind::Vulcan => MachineKind::Quartz,
                    },
                    ..q.clone()
                },
            ),
            (
                "app",
                ScenarioQuery {
                    app: match q.app {
                        AppKind::Lulesh => AppKind::Cmtbone,
                        AppKind::Cmtbone => AppKind::Poison,
                        AppKind::Poison => AppKind::Lulesh,
                    },
                    ..q.clone()
                },
            ),
            ("problem_size", ScenarioQuery { problem_size: q.problem_size + 1, ..q.clone() }),
            ("ranks", ScenarioQuery { ranks: q.ranks + 8, ..q.clone() }),
            ("steps", ScenarioQuery { steps: q.steps + 1, ..q.clone() }),
            ("ft_period", ScenarioQuery { ft_period: q.ft_period + 1, ..q.clone() }),
        ];
        for (field, m) in mutants {
            assert_ne!(
                q.baseline_key(),
                m.baseline_key(),
                "trial {trial}: mutating `{field}` must change the baseline key"
            );
            assert_ne!(
                q.fingerprint(),
                m.fingerprint(),
                "trial {trial}: mutating `{field}` must change the fingerprint"
            );
        }
    }
}

#[test]
fn overlay_fields_never_touch_the_baseline_key() {
    let mut g = Gen(0xCAFE_0003);
    for trial in 0..TRIALS {
        let q = arb_query(&mut g);
        let overlay = ScenarioQuery {
            id: q.id.wrapping_add(1 + g.next()),
            seed: q.seed.wrapping_add(1 + g.next()),
            mode: match q.mode {
                QueryMode::Baseline => QueryMode::Online,
                QueryMode::Online => QueryMode::Baseline,
            },
            mtbf: q.mtbf + 1.0,
            deadline_ms: q.deadline_ms + 1,
            ..q.clone()
        };
        assert_eq!(
            q.baseline_key(),
            overlay.baseline_key(),
            "trial {trial}: id/seed/mode/mtbf/deadline_ms are overlay-only"
        );
        // …but seed, mode and mtbf are semantic for the quarantine
        // fingerprint (they change what the worker computes).
        assert_ne!(
            q.fingerprint(),
            overlay.fingerprint(),
            "trial {trial}: the overlay changes the fingerprint"
        );
        // id and deadline_ms alone change neither hash.
        let relabeled =
            ScenarioQuery { id: q.id.wrapping_add(9), deadline_ms: q.deadline_ms + 9, ..q.clone() };
        assert_eq!(q.baseline_key(), relabeled.baseline_key(), "trial {trial}");
        assert_eq!(q.fingerprint(), relabeled.fingerprint(), "trial {trial}");
    }
}

#[test]
fn keys_are_collision_free_across_the_sampled_space() {
    // Not a cryptographic claim — just that the mixer separates every
    // distinct semantic tuple this sample produces, on a fixed seed, so a
    // regression to a weak mix (e.g. XOR of fields) fails loudly.
    let mut g = Gen(0xCAFE_0004);
    let mut tuples = BTreeSet::new();
    let mut keys = BTreeSet::new();
    for _ in 0..2000 {
        let q = arb_query(&mut g);
        let tuple =
            (q.machine.name(), q.app.name(), q.problem_size, q.ranks, q.steps, q.ft_period);
        if tuples.insert(tuple) {
            assert!(
                keys.insert(q.baseline_key()),
                "two distinct scenarios share a baseline key: {tuple:?}"
            );
        }
    }
    assert!(tuples.len() > 500, "sampler collapsed: only {} distinct tuples", tuples.len());
}
