//! The chaos gate: the DST-style acceptance harness for the serving
//! layer. Under the `serve` buggify preset — injected worker crashes and
//! delays, duplicated query lines, dropped response lines, cache bit
//! flips — the server must still give **exactly one response per
//! accepted query**, never abort, and produce response lines that are
//! **bit-identical** to a fault-free run of the same batch. Chaos may
//! cost latency (retries, cache recomputes); it may never change an
//! answer.
//!
//! Everything here is keyed by fixed seeds: a failure replays exactly.

use besst_serve::net::serve_lines;
use besst_serve::protocol::render_response;
use besst_serve::query::ScenarioQuery;
use besst_serve::{json, Chaos, ServeConfig, Server};
use std::collections::BTreeMap;
use std::sync::Once;

/// Injected crashes and the poison app panic on purpose; without a
/// filtering hook every caught panic spams the captured test output.
/// Genuine panics (assertion failures) still reach the default hook.
fn quiet_expected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_default();
            if msg.contains("buggify:") || msg.contains("poison") {
                return; // expected self-injected fault
            }
            default(info);
        }));
    });
}

fn query(text: &str) -> ScenarioQuery {
    ScenarioQuery::from_value(&json::parse(text).expect("valid JSON")).expect("valid query")
}

/// The 1000-query acceptance batch: 16 distinct baselines (so the cache
/// both hits and, under chaos, takes corruptions), distinct seeds and
/// modes per query, plus a sprinkle of poison scenarios that panic
/// *organically* on every attempt.
fn acceptance_batch() -> Vec<ScenarioQuery> {
    (0..1000u64)
        .map(|i| {
            if i % 97 == 0 {
                // Poison: the worker itself panics. Must be isolated and
                // answered with the same typed error as fault-free.
                query(&format!(r#"{{"id":{i},"app":"poison","seed":{i}}}"#))
            } else {
                let machine = if i % 2 == 0 { "quartz" } else { "vulcan" };
                let steps = 10 + 10 * ((i / 2) % 2); // 10 or 20
                let ps = 5 + 5 * ((i / 4) % 2); // 5 or 10
                let mode = if i % 3 == 0 { "baseline" } else { "online" };
                query(&format!(
                    r#"{{"id":{i},"machine":"{machine}","steps":{steps},"problem_size":{ps},"ranks":8,"mode":"{mode}","seed":{i}}}"#
                ))
            }
        })
        .collect()
}

fn render_batch(server: &Server, queries: &[ScenarioQuery]) -> Vec<String> {
    let resps = server.handle_batch(queries);
    assert_eq!(resps.len(), queries.len(), "exactly one response per query");
    for (q, r) in queries.iter().zip(&resps) {
        assert_eq!(q.id, r.id, "responses stay in input order");
    }
    resps.iter().map(render_response).collect()
}

#[test]
fn thousand_query_chaos_batch_is_bit_identical() {
    quiet_expected_panics();
    let queries = acceptance_batch();

    let fault_free = Server::new(ServeConfig::default()).expect("pool starts");
    let clean = render_batch(&fault_free, &queries);

    let chaos_cfg =
        ServeConfig { chaos: Some(Chaos::new(0xC4A0_5001)), ..ServeConfig::default() };
    let chaotic = Server::new(chaos_cfg).expect("pool starts");
    let stormy = render_batch(&chaotic, &queries);

    for (i, (a, b)) in clean.iter().zip(&stormy).enumerate() {
        assert_eq!(a, b, "query {i}: chaos changed the answer");
    }

    // The run was actually chaotic — the preset fired at every layer the
    // batch engine owns — and the isolation layer saw real panics.
    let injected = chaotic.chaos_stats();
    assert!(injected.worker_crashes > 0, "{injected:?}");
    assert!(injected.worker_delays > 0, "{injected:?}");
    assert!(injected.cache_corruptions > 0, "{injected:?}");
    let stats = chaotic.stats();
    assert!(stats.panics_caught > 0, "{stats:?}");
    assert!(stats.retries > 0, "{stats:?}");
    assert_eq!(stats.received, 1000);
    // Chaos is allowed to cost cache work, never answers. (Not exact
    // equality: a flip lands on every re-insert of a chosen key, and the
    // last flip before the batch ends may never be probed again.)
    let cache = chaotic.cache_stats();
    assert!(cache.corruptions > 0, "{cache:?}");
    assert!(cache.corruptions <= injected.cache_corruptions, "{cache:?} vs {injected:?}");
}

#[test]
fn chaos_runs_replay_exactly_from_their_seed() {
    quiet_expected_panics();
    let queries: Vec<ScenarioQuery> = acceptance_batch().into_iter().take(200).collect();
    let run = |seed: u64| {
        let cfg = ServeConfig { chaos: Some(Chaos::new(seed)), ..ServeConfig::default() };
        let s = Server::new(cfg).expect("pool starts");
        let lines = render_batch(&s, &queries);
        (lines, s.chaos_stats())
    };
    let (lines_a, chaos_a) = run(0xD57_0042);
    let (lines_b, chaos_b) = run(0xD57_0042);
    assert_eq!(lines_a, lines_b, "same seed, same responses");
    // Per-attempt decisions are keyed by (fingerprint, attempt), so their
    // counts replay exactly. Cache-corruption counts are excluded: which
    // worker re-inserts after a concurrent miss is a benign race.
    assert_eq!(chaos_a.worker_crashes, chaos_b.worker_crashes, "same seed, same crashes");
    assert_eq!(chaos_a.worker_delays, chaos_b.worker_delays, "same seed, same delays");
}

/// The connection-layer game: response lines are dropped on the wire and
/// query lines are duplicated on read. The client-side contract is
/// "resubmit any id you did not hear back about"; every line the client
/// *does* hear must be bit-identical to the fault-free answer for that
/// id, duplicates included, and the game must converge.
#[test]
fn dropped_and_duplicated_lines_converge_to_the_fault_free_answers() {
    quiet_expected_panics();
    let queries: Vec<ScenarioQuery> = acceptance_batch()
        .into_iter()
        .take(200)
        .filter(|q| q.app != besst_serve::query::AppKind::Poison)
        .collect();

    // Canonical answers from a fault-free server.
    let fault_free = Server::new(ServeConfig::default()).expect("pool starts");
    let canonical: BTreeMap<u64, String> = queries
        .iter()
        .zip(render_batch(&fault_free, &queries))
        .map(|(q, line)| (q.id, line))
        .collect();
    let request_line = |q: &ScenarioQuery| {
        format!(
            r#"{{"id":{},"machine":"{}","steps":{},"problem_size":{},"ranks":{},"mode":"{}","seed":{}}}"#,
            q.id,
            q.machine.name(),
            q.steps,
            q.problem_size,
            q.ranks,
            q.mode.name(),
            q.seed
        )
    };

    let cfg = ServeConfig { chaos: Some(Chaos::new(0xBADC_0FFE)), ..ServeConfig::default() };
    let server = Server::new(cfg).expect("pool starts");

    let mut pending: BTreeMap<u64, &ScenarioQuery> =
        queries.iter().map(|q| (q.id, q)).collect();
    let mut heard: BTreeMap<u64, String> = BTreeMap::new();
    let mut drops_seen = 0u64;
    let mut dups_seen = 0u64;
    for round in 0..32u64 {
        if pending.is_empty() {
            break;
        }
        let input: String =
            pending.values().map(|q| request_line(q) + "\n").collect::<String>() + "\n";
        let mut out: Vec<u8> = Vec::new();
        // A fresh `conn` per round models a reconnecting client; the
        // drop/dup decisions are keyed by (conn, seq) so each round draws
        // a different — still deterministic — fault pattern.
        serve_lines(&server, input.as_bytes(), &mut out, round).expect("serves");
        let text = String::from_utf8(out).expect("utf8");
        let submitted = pending.len();
        let mut answered_this_round = 0usize;
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            let id = line
                .split("\"id\":")
                .nth(1)
                .and_then(|rest| rest.split([',', '}']).next())
                .and_then(|n| n.parse::<u64>().ok())
                .expect("every response line carries an id");
            assert_eq!(
                &canonical[&id], line,
                "round {round}: a heard line must be bit-identical to fault-free"
            );
            answered_this_round += 1;
            if let Some(prev) = heard.insert(id, line.to_string()) {
                assert_eq!(prev, line, "duplicate answers must be identical");
                dups_seen += 1;
            }
            pending.remove(&id);
        }
        // Lines heard ≤ submissions + duplications; any shortfall is a
        // drop the client resubmits next round.
        if answered_this_round < submitted {
            drops_seen += (submitted - answered_this_round) as u64;
        }
    }
    assert!(pending.is_empty(), "resubmission never converged: {pending:?}");
    assert_eq!(heard.len(), queries.len(), "every id answered");
    // Client-side counts are lower bounds: a duplicated line that was
    // itself dropped is invisible from this side of the wire.
    let injected = server.chaos_stats();
    assert!(injected.dropped_responses >= drops_seen, "{injected:?} vs {drops_seen} observed");
    assert!(injected.duplicated_queries >= dups_seen, "{injected:?}");
    assert!(injected.dropped_responses > 0, "the game must actually lose lines");
    assert!(injected.duplicated_queries > 0, "the game must actually duplicate lines");
}
