//! Property tests for the consistent-hash ring (satellite of the
//! sharded-cluster PR): balanced key distribution, minimal key movement
//! when a shard dies or rejoins, and deterministic routing across
//! independently built instances.
//!
//! No proptest dependency — the properties are checked exhaustively over
//! fixed key sets, which keeps failures replayable from the literals
//! below.

use besst_serve::ring::Ring;
use besst_serve::{Cluster, ClusterConfig};

const SEED: u64 = 0xBE57_C1C5;

/// Route `key` the way the cluster does when `dead` shards are down:
/// first shard in successor order not in the dead set.
fn route_avoiding(ring: &Ring, key: u64, dead: &[u32]) -> u32 {
    ring.successor_order(key)
        .into_iter()
        .find(|s| !dead.contains(s))
        .expect("at least one alive shard")
}

#[test]
fn key_distribution_is_balanced() {
    let shards = 8u32;
    let keys = 100_000u64;
    let ring = Ring::new(SEED, shards, 64);
    let mut counts = vec![0u64; shards as usize];
    for k in 0..keys {
        counts[ring.primary(k) as usize] += 1;
    }
    // Chi-square-style imbalance statistic, normalized by the key count
    // so it measures *arc-length* imbalance rather than sampling noise
    // (each shard's true share is its arc fraction, not exactly 1/n, so
    // the raw statistic grows linearly in keys). With 64 vnodes per
    // shard the per-shard share has std ≈ 1/(n·√vnodes) ≈ 1.6%; the
    // observed statistic is ~0.015 and the fixed seed makes this a
    // regression pin, not a flaky sample.
    let expected = keys as f64 / f64::from(shards);
    let chi2: f64 =
        counts.iter().map(|&c| (c as f64 - expected).powi(2) / expected).sum();
    let imbalance = chi2 / keys as f64;
    assert!(imbalance < 0.05, "imbalance = {imbalance:.4}, counts = {counts:?}");
    // No shard is starved or doubled relative to its fair share.
    for (shard, &c) in counts.iter().enumerate() {
        let share = c as f64 / expected;
        assert!((0.7..=1.4).contains(&share), "shard {shard} owns {share:.2}x fair share");
    }
}

#[test]
fn shard_death_moves_only_the_dead_shards_keys() {
    let shards = 8u32;
    let keys = 20_000u64;
    let ring = Ring::new(SEED, shards, 64);
    let dead = 3u32;
    let mut moved = 0u64;
    for k in 0..keys {
        let before = ring.primary(k);
        let after = route_avoiding(&ring, k, &[dead]);
        if before == dead {
            moved += 1;
            assert_ne!(after, dead, "dead shard must not be routed to");
        } else {
            assert_eq!(before, after, "key {k}: survivor keys must not move");
        }
    }
    // The dead shard owned roughly 1/8 of the keyspace; exactly that
    // much — and nothing else — moves.
    let fair = keys as f64 / f64::from(shards);
    assert!(
        (moved as f64) < fair * 1.5 && (moved as f64) > fair * 0.5,
        "moved {moved} keys, fair share is {fair:.0}"
    );
}

#[test]
fn rejoin_restores_exactly_the_old_keys() {
    let ring = Ring::new(SEED, 6, 64);
    let dead = 2u32;
    for k in 0..20_000u64 {
        let original = ring.primary(k);
        let rejoined = route_avoiding(&ring, k, &[]);
        assert_eq!(original, rejoined, "the ring is immutable: rejoin is a no-op for routing");
        // And while the shard was dead, every displaced key went to the
        // key's *next* successor, so failover reads stay on an owner.
        if original == dead {
            let during = route_avoiding(&ring, k, &[dead]);
            assert_eq!(during, ring.successor_order(k)[1], "failover lands on the successor");
        }
    }
}

#[test]
fn routing_is_deterministic_across_instances() {
    let a = Ring::new(SEED, 8, 64);
    let b = Ring::new(SEED, 8, 64);
    let other = Ring::new(SEED ^ 1, 8, 64);
    let mut seen_difference = false;
    for k in 0..10_000u64 {
        assert_eq!(
            a.successor_order(k),
            b.successor_order(k),
            "two instances with the same seed must route identically"
        );
        seen_difference |= a.primary(k) != other.primary(k);
    }
    assert!(seen_difference, "a different seed must produce a different placement");
}

#[test]
fn cluster_route_agrees_with_the_bare_ring() {
    // The cluster's routing (with every shard healthy and nothing
    // avoided) is exactly the ring's primary: the cluster adds health
    // tracking, not placement policy.
    let cfg = ClusterConfig { shards: 5, ..ClusterConfig::sharded(5) };
    let cluster = Cluster::new(cfg, 64).expect("valid config");
    for k in 0..5_000u64 {
        assert_eq!(cluster.route(k, &[]), cluster.ring().primary(k));
    }
    assert_eq!(cluster.stats().failovers, 0, "healthy routing never counts a failover");
}
