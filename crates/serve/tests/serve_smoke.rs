//! End-to-end smoke over a real TCP socket: a mixed batch (good, poison,
//! malformed) against `serve_tcp` on an ephemeral port, fault-free and
//! under the chaos preset. This is what `just serve-smoke` and the CI
//! smoke job exercise through the `besst serve` binary; here the same
//! path runs in-process so the tier-1 suite covers it without spawning.

use besst_serve::net::{serve_tcp, TcpSummary};
use besst_serve::{Chaos, ServeConfig, Server};
use std::collections::BTreeSet;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Once;

fn quiet_expected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_default();
            if msg.contains("buggify:") || msg.contains("poison") {
                return;
            }
            default(info);
        }));
    });
}

/// Bind an ephemeral listener and serve `max_conns` connections on a
/// background thread; returns the address and the join handle.
fn spawn_server(
    cfg: ServeConfig,
    max_conns: u64,
) -> (std::net::SocketAddr, std::thread::JoinHandle<std::io::Result<TcpSummary>>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral bind");
    let addr = listener.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || {
        let server = Server::new(cfg).expect("pool starts");
        serve_tcp(&server, &listener, Some(max_conns))
    });
    (addr, handle)
}

/// Send one batch and collect the response lines (up to the blank-line
/// batch terminator).
fn roundtrip(addr: std::net::SocketAddr, batch: &str) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(batch.as_bytes()).expect("send batch");
    stream.write_all(b"\n").expect("send delimiter");
    stream.flush().expect("flush");
    let mut reader = BufReader::new(stream);
    let mut lines = Vec::new();
    loop {
        let mut line = String::new();
        // lint: allow(unbounded-wait) -- test client reading its own
        // trusted in-process server; response lines are protocol-bounded
        let n = reader.read_line(&mut line).expect("read response");
        if n == 0 || line.trim().is_empty() {
            return lines; // blank line ends the batch (or EOF)
        }
        lines.push(line.trim_end().to_string());
    }
}

const SMOKE_BATCH: &str = concat!(
    "{\"id\":1,\"steps\":20,\"ranks\":8,\"seed\":1}\n",
    "{\"id\":2,\"app\":\"poison\",\"seed\":2}\n",
    "{\"id\":3,\"machine\":\"vulcan\",\"steps\":10,\"mode\":\"baseline\"}\n",
    "this line is not json\n",
    "{\"id\":5,\"ranks\":12,\"ft_period\":5}\n", // FTI rejects this geometry
);

#[test]
fn tcp_smoke_mixed_batch() {
    quiet_expected_panics();
    let (addr, handle) = spawn_server(ServeConfig::default(), 1);
    let lines = roundtrip(addr, SMOKE_BATCH);
    let summary = handle.join().expect("server thread").expect("serves");
    assert_eq!(summary, TcpSummary { connections: 1, batches: 1 });

    assert_eq!(lines.len(), 5, "one response line per input line: {lines:#?}");
    let find = |needle: &str| {
        lines
            .iter()
            .find(|l| l.contains(needle))
            .unwrap_or_else(|| panic!("no line contains {needle}: {lines:#?}"))
    };
    assert!(find("\"id\":1").contains("\"status\":\"ok\""));
    assert!(find("\"id\":2").contains("\"kind\":\"panic\""));
    assert!(find("\"id\":3").contains("\"status\":\"ok\""));
    assert!(find("\"kind\":\"bad_request\"").contains("\"status\":\"error\""));
    assert!(find("\"id\":5").contains("\"kind\":\"bad_request\""));
}

#[test]
fn tcp_smoke_chaos_preset() {
    quiet_expected_panics();
    const CONNS: u64 = 8;
    let cfg = ServeConfig { chaos: Some(Chaos::new(0x005E_12E5)), ..ServeConfig::default() };
    let (addr, handle) = spawn_server(cfg, CONNS);

    // Resubmission game over real sockets: each round reconnects (a fresh
    // conn id draws a fresh drop/dup pattern) and resends the unanswered
    // ids; poison ids count as answered when their typed error arrives.
    let mut pending: BTreeSet<u64> = (0..24).collect();
    let mut used = 0u64;
    while used < CONNS && !pending.is_empty() {
        let batch: String = pending
            .iter()
            .map(|id| {
                if id % 7 == 0 {
                    format!("{{\"id\":{id},\"app\":\"poison\",\"seed\":{id}}}\n")
                } else {
                    format!("{{\"id\":{id},\"steps\":10,\"ranks\":8,\"seed\":{id}}}\n")
                }
            })
            .collect();
        used += 1;
        for line in roundtrip(addr, &batch) {
            let id = line
                .split("\"id\":")
                .nth(1)
                .and_then(|rest| rest.split([',', '}']).next())
                .and_then(|n| n.parse::<u64>().ok())
                .expect("response lines carry ids");
            assert!(
                line.contains("\"status\":\"ok\"") || line.contains("\"kind\":\"panic\""),
                "unexpected outcome under chaos: {line}"
            );
            pending.remove(&id);
        }
    }
    assert!(pending.is_empty(), "chaos smoke never converged: {pending:?}");

    // Drain the unused connection budget so the server thread exits.
    for _ in used..CONNS {
        drop(TcpStream::connect(addr).expect("drain connect"));
    }
    let summary = handle.join().expect("server thread").expect("serves");
    assert_eq!(summary.connections, CONNS);
    assert_eq!(summary.batches, used);
}
