//! The storm chaos gate: the harshest acceptance harness for the
//! sharded serving layer. Under the `storm` buggify preset, whole shards
//! suffer correlated crash bursts — every attempt routed to a storming
//! shard fails 3-in-4 — on top of the full `serve` fault set. The
//! cluster must reroute around the dead shards, keep the replicated
//! quarantine view coherent, and answer **every query in a 1000-query
//! batch exactly once, bit-identical to a fault-free single-shard run**.
//!
//! The storm seed is fixed (0x2 storms shards 0 and 2 of 4, verified by
//! `the_chosen_seed_storms_multiple_shards`): a failure replays exactly.

use besst_serve::protocol::render_response;
use besst_serve::query::ScenarioQuery;
use besst_serve::{json, Chaos, ClusterConfig, ServeConfig, Server};
use std::sync::Once;

/// The pinned storm seed: shards 0 and 2 of a 4-shard cluster storm.
const STORM_SEED: u64 = 0x2;

/// Injected crashes and the poison app panic on purpose; see
/// `tests/chaos.rs` for why the hook filter exists.
fn quiet_expected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_default();
            if msg.contains("buggify:") || msg.contains("poison") {
                return;
            }
            default(info);
        }));
    });
}

fn query(text: &str) -> ScenarioQuery {
    ScenarioQuery::from_value(&json::parse(text).expect("valid JSON")).expect("valid query")
}

/// The 1000-query acceptance batch: same shape as the `serve` gate —
/// 16 distinct baselines, mixed modes, poison scenarios sprinkled in.
fn acceptance_batch() -> Vec<ScenarioQuery> {
    (0..1000u64)
        .map(|i| {
            if i % 97 == 0 {
                query(&format!(r#"{{"id":{i},"app":"poison","seed":{i}}}"#))
            } else {
                let machine = if i % 2 == 0 { "quartz" } else { "vulcan" };
                let steps = 10 + 10 * ((i / 2) % 2);
                let ps = 5 + 5 * ((i / 4) % 2);
                let mode = if i % 3 == 0 { "baseline" } else { "online" };
                query(&format!(
                    r#"{{"id":{i},"machine":"{machine}","steps":{steps},"problem_size":{ps},"ranks":8,"mode":"{mode}","seed":{i}}}"#
                ))
            }
        })
        .collect()
}

/// The poison subset, used as a warm-up so the acceptance batch probes
/// quarantine fast-fails: each poison fingerprint exhausts retries once
/// per warm-up run, and `quarantine_threshold = 2` warm-ups quarantine
/// it — identically on both servers, because poison panics are organic.
fn poison_warmup() -> Vec<ScenarioQuery> {
    acceptance_batch()
        .into_iter()
        .filter(|q| q.app == besst_serve::query::AppKind::Poison)
        .collect()
}

fn render_batch(server: &Server, queries: &[ScenarioQuery]) -> Vec<String> {
    let resps = server.handle_batch(queries);
    assert_eq!(resps.len(), queries.len(), "exactly one response per query");
    for (q, r) in queries.iter().zip(&resps) {
        assert_eq!(q.id, r.id, "responses stay in input order");
    }
    resps.iter().map(render_response).collect()
}

/// 4 shards, replication 3: with two storming shards, every replicated
/// quarantine record keeps at least one non-storming holder, so the
/// merged snapshot never loses a failure count mid-storm.
fn storm_cluster() -> ClusterConfig {
    ClusterConfig { replication: 3, ..ClusterConfig::sharded(4) }
}

#[test]
fn the_chosen_seed_storms_multiple_shards() {
    // Pin the seed's meaning: if the storm preset's probabilities or the
    // decision keying ever change, this fails before the gate misleads.
    let chaos = Chaos::storm(STORM_SEED);
    let storming: Vec<u32> = (0..4u32).filter(|&s| chaos.shard_storms(s)).collect();
    assert_eq!(storming, vec![0, 2], "seed {STORM_SEED:#x} must storm shards 0 and 2");
}

#[test]
fn storm_batch_is_bit_identical_to_fault_free_single_shard() {
    quiet_expected_panics();
    let warmup = poison_warmup();
    let queries = acceptance_batch();

    // Canonical run: one shard, no chaos — the classic server.
    let fault_free = Server::new(ServeConfig::default()).expect("pool starts");
    render_batch(&fault_free, &warmup);
    render_batch(&fault_free, &warmup);
    let clean = render_batch(&fault_free, &queries);

    // Storm run: 4 shards, replication 3, whole-shard crash bursts.
    let cfg = ServeConfig {
        cluster: storm_cluster(),
        chaos: Some(Chaos::storm(STORM_SEED)),
        ..ServeConfig::default()
    };
    let stormy_server = Server::new(cfg).expect("pool starts");
    render_batch(&stormy_server, &warmup);
    render_batch(&stormy_server, &warmup);
    let stormy = render_batch(&stormy_server, &queries);

    for (i, (a, b)) in clean.iter().zip(&stormy).enumerate() {
        assert_eq!(a, b, "query {i}: the storm changed the answer");
    }

    // The quarantine layer was actually probed: poison fingerprints
    // fast-fail identically on both servers.
    let quarantined = clean.iter().filter(|l| l.contains("\"kind\":\"quarantined\"")).count();
    assert!(quarantined > 0, "warm-up must quarantine the poison fingerprints");

    // And the storm actually raged: shard crashes were injected, the
    // failure detector declared deaths, routing failed over, and the
    // non-shard fault sites kept firing underneath.
    let injected = stormy_server.chaos_stats();
    assert!(injected.shard_crashes > 0, "{injected:?}");
    assert!(injected.worker_crashes > 0, "{injected:?}");
    let cluster = stormy_server.cluster_stats();
    assert!(cluster.deaths >= 1, "a storming shard must die: {cluster:?}");
    assert!(cluster.failovers > 0, "dead shards must be routed around: {cluster:?}");
    assert!(cluster.shard_failures > 0, "{cluster:?}");
    let stats = stormy_server.stats();
    assert_eq!(stats.received, 1000 + 2 * warmup.len() as u64);
}

#[test]
fn storm_runs_replay_exactly_from_their_seed() {
    quiet_expected_panics();
    let queries: Vec<ScenarioQuery> = acceptance_batch().into_iter().take(300).collect();
    let run = || {
        let cfg = ServeConfig {
            cluster: storm_cluster(),
            chaos: Some(Chaos::storm(STORM_SEED)),
            ..ServeConfig::default()
        };
        let s = Server::new(cfg).expect("pool starts");
        let lines = render_batch(&s, &queries);
        (lines, s.chaos_stats().shard_crashes, s.cluster_stats().deaths)
    };
    let (lines_a, crashes_a, deaths_a) = run();
    let (lines_b, crashes_b, deaths_b) = run();
    assert_eq!(lines_a, lines_b, "same seed, same responses");
    assert_eq!(crashes_a, crashes_b, "shard-crash decisions are keyed, not raced");
    assert_eq!(deaths_a, deaths_b, "the detector's verdicts replay");
}

#[test]
fn dead_shards_rejoin_and_resync_under_sustained_load() {
    quiet_expected_panics();
    // A smaller rejoin_after than the default so the probation cycle
    // (dead → rejoin → resync → die again while the storm lasts) turns
    // over several times within one batch.
    let cfg = ServeConfig {
        cluster: ClusterConfig { rejoin_after: 16, ..storm_cluster() },
        chaos: Some(Chaos::storm(STORM_SEED)),
        ..ServeConfig::default()
    };
    let server = Server::new(cfg).expect("pool starts");
    let queries = acceptance_batch();
    render_batch(&server, &queries);
    let cluster = server.cluster_stats();
    assert!(cluster.deaths >= 2, "{cluster:?}");
    assert!(cluster.rejoins >= 1, "dead shards must come back on probation: {cluster:?}");
    assert!(
        cluster.deaths > cluster.rejoins.saturating_sub(1),
        "a rejoined shard that keeps storming must die again: {cluster:?}"
    );
}
