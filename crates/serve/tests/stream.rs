//! Streaming-mode acceptance: a batch served under `{"mode":"stream"}`
//! flushes responses in completion order, each tagged with the `idx` of
//! the query line it answers — and sorting by `idx` then stripping the
//! tags must reproduce the ordered-mode output **byte for byte**, fault
//! free or mid-storm. Streaming changes latency shape, never answers.

use besst_serve::net::serve_lines;
use besst_serve::{Chaos, ClusterConfig, ServeConfig, Server};
use std::collections::BTreeMap;
use std::sync::Once;

fn quiet_expected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_default();
            if msg.contains("buggify:") || msg.contains("poison") {
                return;
            }
            default(info);
        }));
    });
}

/// A mixed 200-line batch body (no header): valid queries over all the
/// baseline knobs plus a malformed line every 40th position, so the
/// reassembly proof covers rejections too. Query ids start at 1 —
/// rejected lines all render `id: 0`, which must stay distinct.
fn batch_body() -> String {
    (0..200u64)
        .map(|i| {
            if i % 40 == 13 {
                "definitely not json\n".to_string()
            } else {
                let id = i + 1;
                let machine = if i % 2 == 0 { "quartz" } else { "vulcan" };
                let steps = 10 + 10 * ((i / 2) % 2);
                let mode = if i % 3 == 0 { "baseline" } else { "online" };
                format!(
                    "{{\"id\":{id},\"machine\":\"{machine}\",\"steps\":{steps},\"ranks\":8,\"mode\":\"{mode}\",\"seed\":{i}}}\n"
                )
            }
        })
        .collect()
}

/// Pull the `idx` field out of a streamed response line and return the
/// line with the tag stripped (canonical rendering always puts a field
/// after `idx`, so the tag owns its trailing comma).
fn split_idx(line: &str) -> (u64, String) {
    let tag_at = line.find("\"idx\":").expect("streamed lines carry idx");
    let after = &line[tag_at + 6..];
    let end = after.find(',').expect("idx is never the last field");
    let idx: u64 = after[..end].parse().expect("idx is a number");
    let stripped = format!("{}{}", &line[..tag_at], &after[end + 1..]);
    (idx, stripped)
}

fn serve(server: &Server, input: &str, conn: u64) -> Vec<String> {
    let mut out: Vec<u8> = Vec::new();
    serve_lines(server, input.as_bytes(), &mut out, conn).expect("serves");
    String::from_utf8(out).expect("utf8").trim_end().lines().map(str::to_string).collect()
}

#[test]
fn sorted_stream_output_reproduces_ordered_output_byte_for_byte() {
    let server = Server::new(ServeConfig::default()).expect("pool starts");
    let body = batch_body();

    let ordered = serve(&server, &format!("{body}\n"), 1);
    let streamed = serve(&server, &format!("{{\"mode\":\"stream\",\"v\":2}}\n{body}\n"), 2);
    assert_eq!(ordered.len(), streamed.len(), "exactly one line per query line either way");

    let mut reassembled: Vec<(u64, String)> = streamed.iter().map(|l| split_idx(l)).collect();
    reassembled.sort_by_key(|&(idx, _)| idx);
    for (expect_idx, (pos, _)) in reassembled.iter().enumerate() {
        assert_eq!(*pos, expect_idx as u64, "every query line answered exactly once");
    }
    let reassembled: Vec<String> = reassembled.into_iter().map(|(_, line)| line).collect();
    assert_eq!(reassembled, ordered, "reassembled stream must equal ordered mode exactly");
}

/// The stream-mode wire game under the full storm preset: shard crash
/// bursts plus dropped response lines and duplicated query lines. The
/// client resubmits ids it did not hear about; every line it *does*
/// hear must strip down to the fault-free ordered-mode answer for the
/// query at that round's `idx`.
#[test]
fn storm_streamed_lines_reassemble_to_fault_free_answers() {
    quiet_expected_panics();
    let body = batch_body();
    let fault_free = Server::new(ServeConfig::default()).expect("pool starts");
    let canonical = serve(&fault_free, &format!("{body}\n"), 1);
    // Canonical answer per *id* for resubmission bookkeeping (malformed
    // lines all render id 0, identically, so collapsing them is safe).
    let canonical_by_id: BTreeMap<u64, String> =
        canonical.iter().map(|l| (extract_id(l), l.clone())).collect();

    let cfg = ServeConfig {
        cluster: ClusterConfig { replication: 3, ..ClusterConfig::sharded(4) },
        chaos: Some(Chaos::storm(0x2)),
        ..ServeConfig::default()
    };
    let server = Server::new(cfg).expect("pool starts");

    let lines: Vec<&str> = body.lines().collect();
    let mut pending: Vec<usize> = (0..lines.len()).collect();
    let mut saw_reorder = false;
    let mut heard = vec![0u32; lines.len()];
    for round in 0..32u64 {
        if pending.is_empty() {
            break;
        }
        let input = format!(
            "{{\"mode\":\"stream\"}}\n{}\n",
            pending.iter().map(|&i| format!("{}\n", lines[i])).collect::<String>()
        );
        let out = serve(&server, &input, round);
        let mut answered: Vec<usize> = Vec::new();
        for (arrival, line) in out.iter().enumerate() {
            let (idx, stripped) = split_idx(line);
            let original = pending[usize::try_from(idx).expect("idx fits")];
            assert_eq!(
                canonical_by_id[&extract_id(&stripped)],
                stripped,
                "round {round}: a heard line must be bit-identical to fault-free"
            );
            assert_eq!(
                extract_id(&stripped),
                extract_id(&canonical[original]),
                "round {round}: idx {idx} must answer the query submitted at that position"
            );
            saw_reorder |= arrival as u64 != idx;
            heard[original] += 1;
            answered.push(original);
        }
        answered.sort_unstable();
        answered.dedup();
        pending.retain(|i| !answered.contains(i));
    }
    assert!(pending.is_empty(), "resubmission never converged");
    assert!(heard.iter().all(|&h| h >= 1), "every query line answered at least once");
    assert!(saw_reorder, "the stream must actually complete out of order");
    assert!(server.chaos_stats().shard_crashes > 0, "the storm must actually fire");
    assert!(server.cluster_stats().failovers > 0, "routing must actually fail over");
}

fn extract_id(line: &str) -> u64 {
    line.split("\"id\":")
        .nth(1)
        .and_then(|rest| rest.split([',', '}']).next())
        .and_then(|n| n.parse().ok())
        .expect("every response line carries an id")
}
