//! Collective-operation cost models.
//!
//! Coarse-grained analytic costs for the MPI collectives the proxy apps and
//! the FTI checkpointing layer use. All models are the standard
//! logarithmic-algorithm costs (binomial-tree broadcast/barrier,
//! Rabenseifner allreduce, ring allgather) expressed over a
//! [`CostModel`] and a mean hop count, which is how
//! BE-SST abstracts the fabric when it expands a communication instruction.

use crate::cost::CostModel;
use serde::{Deserialize, Serialize};

/// Context for costing a collective: fabric timing plus the average routed
/// distance between participants.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CollectiveModel {
    /// Point-to-point fabric model.
    pub fabric: CostModel,
    /// Mean switch hops between communicating peers.
    pub mean_hops: f64,
    /// Effective bandwidth share on contended stages (taper/congestion).
    pub bandwidth_share: f64,
}

impl CollectiveModel {
    /// Build a collective cost context.
    pub fn new(fabric: CostModel, mean_hops: f64, bandwidth_share: f64) -> Self {
        assert!(mean_hops >= 0.0 && mean_hops.is_finite());
        assert!(bandwidth_share > 0.0 && bandwidth_share <= 1.0);
        CollectiveModel { fabric, mean_hops, bandwidth_share }
    }

    fn step_latency(&self) -> f64 {
        self.fabric.overhead_s + self.mean_hops * self.fabric.hop_latency_s
    }

    fn bw_time(&self, bytes: f64) -> f64 {
        bytes / (self.fabric.bandwidth_bps * self.bandwidth_share)
    }

    /// Ceil of log2(p), 0 for p ≤ 1.
    pub fn rounds(p: usize) -> u32 {
        if p <= 1 {
            0
        } else {
            usize::BITS - (p - 1).leading_zeros()
        }
    }

    /// Dissemination barrier: ⌈log₂ p⌉ zero-byte rounds.
    pub fn barrier(&self, p: usize) -> f64 {
        Self::rounds(p) as f64 * self.step_latency()
    }

    /// Binomial-tree broadcast of `bytes` from one root.
    pub fn broadcast(&self, p: usize, bytes: u64) -> f64 {
        let r = Self::rounds(p) as f64;
        r * (self.step_latency() + self.bw_time(bytes as f64))
    }

    /// Rabenseifner allreduce: reduce-scatter + allgather,
    /// `2·log₂p` latency rounds and `2·(p−1)/p` of the data over the wire.
    pub fn allreduce(&self, p: usize, bytes: u64) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let r = Self::rounds(p) as f64;
        let frac = 2.0 * (p as f64 - 1.0) / p as f64;
        2.0 * r * self.step_latency() + self.bw_time(frac * bytes as f64)
    }

    /// Ring allgather of `bytes` contributed per rank.
    pub fn allgather(&self, p: usize, bytes_per_rank: u64) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let steps = (p - 1) as f64;
        steps * (self.step_latency() + self.bw_time(bytes_per_rank as f64))
    }

    /// Halo exchange with `neighbors` peers, `bytes` each way, overlapped
    /// sends: one latency, bandwidth serialized at the injection port.
    pub fn halo_exchange(&self, neighbors: usize, bytes: u64) -> f64 {
        if neighbors == 0 {
            return 0.0;
        }
        self.step_latency() + self.bw_time((neighbors as u64 * bytes) as f64)
    }

    /// Point-to-point partner send (FTI L2 partner-copy): one message of
    /// `bytes` to a dedicated partner.
    pub fn partner_send(&self, bytes: u64) -> f64 {
        self.step_latency() + self.bw_time(bytes as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CollectiveModel {
        CollectiveModel::new(CostModel::omni_path(), 4.0, 1.0)
    }

    #[test]
    fn rounds_is_ceil_log2() {
        assert_eq!(CollectiveModel::rounds(1), 0);
        assert_eq!(CollectiveModel::rounds(2), 1);
        assert_eq!(CollectiveModel::rounds(3), 2);
        assert_eq!(CollectiveModel::rounds(4), 2);
        assert_eq!(CollectiveModel::rounds(5), 3);
        assert_eq!(CollectiveModel::rounds(1024), 10);
        assert_eq!(CollectiveModel::rounds(1025), 11);
    }

    #[test]
    fn barrier_scales_logarithmically() {
        let m = model();
        let b8 = m.barrier(8);
        let b64 = m.barrier(64);
        assert!((b64 / b8 - 2.0).abs() < 1e-9, "log2(64)/log2(8) = 2");
    }

    #[test]
    fn single_rank_collectives_are_free() {
        let m = model();
        assert_eq!(m.barrier(1), 0.0);
        assert_eq!(m.allreduce(1, 1 << 20), 0.0);
        assert_eq!(m.allgather(1, 1 << 20), 0.0);
        assert_eq!(m.broadcast(1, 1 << 20), 0.0);
    }

    #[test]
    fn allreduce_bandwidth_term_saturates_with_p() {
        let m = model();
        // The fraction 2(p-1)/p approaches 2; latency grows with log p.
        let big = m.allreduce(1 << 20, 8);
        let bigger = m.allreduce(1 << 20, 8);
        assert_eq!(big, bigger);
        let t64 = m.allreduce(64, 1 << 24);
        let t1024 = m.allreduce(1024, 1 << 24);
        // Bandwidth-dominated: large message → modest growth with p.
        assert!(t1024 < 1.5 * t64);
    }

    #[test]
    fn halo_exchange_serializes_injection() {
        let m = model();
        let one = m.halo_exchange(1, 1 << 20);
        let six = m.halo_exchange(6, 1 << 20);
        let bw = (1u64 << 20) as f64 / m.fabric.bandwidth_bps;
        assert!((six - one - 5.0 * bw).abs() < 1e-12);
    }

    #[test]
    fn monotone_in_participants() {
        let m = model();
        for p in [2usize, 4, 8, 16, 32] {
            assert!(m.barrier(p) <= m.barrier(p * 2));
            assert!(m.allreduce(p, 4096) <= m.allreduce(p * 2, 4096));
            assert!(m.allgather(p, 4096) <= m.allgather(p * 2, 4096));
        }
    }

    #[test]
    fn taper_increases_cost() {
        let full = CollectiveModel::new(CostModel::omni_path(), 4.0, 1.0);
        let tapered = CollectiveModel::new(CostModel::omni_path(), 4.0, 0.5);
        assert!(tapered.allreduce(64, 1 << 20) > full.allreduce(64, 1 << 20));
        assert!(tapered.partner_send(1 << 20) > full.partner_send(1 << 20));
    }
}
