//! Point-to-point communication cost model.
//!
//! The classic postal / Hockney model extended with per-hop switching
//! latency and an optional congestion factor:
//!
//! ```text
//! t(bytes, hops) = overhead + hops * hop_latency + bytes / (bandwidth * share)
//! ```
//!
//! where `share ∈ (0, 1]` reflects contention on shared stages (e.g. the
//! tapered core of a fat-tree under global traffic). All times are seconds.

use serde::{Deserialize, Serialize};

/// Fabric timing parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CostModel {
    /// Software/injection overhead per message, seconds (MPI stack, NIC).
    pub overhead_s: f64,
    /// Per-switch-hop latency, seconds.
    pub hop_latency_s: f64,
    /// Link bandwidth, bytes per second.
    pub bandwidth_bps: f64,
}

impl CostModel {
    /// Construct; all parameters must be positive and finite.
    pub fn new(overhead_s: f64, hop_latency_s: f64, bandwidth_bps: f64) -> Self {
        assert!(
            overhead_s >= 0.0 && overhead_s.is_finite(),
            "overhead must be finite and non-negative"
        );
        assert!(
            hop_latency_s >= 0.0 && hop_latency_s.is_finite(),
            "hop latency must be finite and non-negative"
        );
        assert!(
            bandwidth_bps > 0.0 && bandwidth_bps.is_finite(),
            "bandwidth must be finite and positive"
        );
        CostModel { overhead_s, hop_latency_s, bandwidth_bps }
    }

    /// Omni-Path-like parameters (100 Gb/s links, ~110 ns per switch hop,
    /// ~1 µs MPI overhead) — the Quartz fabric class.
    pub fn omni_path() -> Self {
        CostModel::new(1.0e-6, 110.0e-9, 100.0e9 / 8.0)
    }

    /// BlueGene/Q torus-like parameters (2 GB/s per link, ~40 ns hops).
    pub fn bgq_torus() -> Self {
        CostModel::new(1.2e-6, 40.0e-9, 2.0e9)
    }

    /// Time for one message of `bytes` over `hops` switch hops, full link
    /// bandwidth.
    pub fn pt2pt(&self, bytes: u64, hops: u32) -> f64 {
        self.pt2pt_shared(bytes, hops, 1.0)
    }

    /// Like [`CostModel::pt2pt`] but with only `share` of the link
    /// bandwidth available (congestion / taper).
    pub fn pt2pt_shared(&self, bytes: u64, hops: u32, share: f64) -> f64 {
        assert!(share > 0.0 && share <= 1.0, "bandwidth share must be in (0, 1]");
        self.overhead_s
            + hops as f64 * self.hop_latency_s
            + bytes as f64 / (self.bandwidth_bps * share)
    }

    /// Pure latency of a zero-byte message over `hops` hops.
    pub fn latency(&self, hops: u32) -> f64 {
        self.overhead_s + hops as f64 * self.hop_latency_s
    }

    /// Bytes/second effectively delivered for a message of `bytes` over
    /// `hops` (i.e. including latency), useful for sanity checks.
    pub fn effective_bandwidth(&self, bytes: u64, hops: u32) -> f64 {
        bytes as f64 / self.pt2pt(bytes, hops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pt2pt_components_add() {
        let m = CostModel::new(1e-6, 100e-9, 1e9);
        let t = m.pt2pt(1000, 4);
        let expect = 1e-6 + 4.0 * 100e-9 + 1000.0 / 1e9;
        assert!((t - expect).abs() < 1e-15);
    }

    #[test]
    fn zero_byte_message_is_pure_latency() {
        let m = CostModel::omni_path();
        assert!((m.pt2pt(0, 3) - m.latency(3)).abs() < 1e-18);
    }

    #[test]
    fn shared_bandwidth_slows_transfer() {
        let m = CostModel::omni_path();
        let full = m.pt2pt(1 << 20, 4);
        let half = m.pt2pt_shared(1 << 20, 4, 0.5);
        assert!(half > full);
        // The bandwidth term exactly doubles.
        let bw_term = (1u64 << 20) as f64 / m.bandwidth_bps;
        assert!((half - full - bw_term).abs() < 1e-12);
    }

    #[test]
    fn effective_bandwidth_approaches_link_rate() {
        let m = CostModel::omni_path();
        let small = m.effective_bandwidth(64, 4);
        let large = m.effective_bandwidth(1 << 30, 4);
        assert!(small < large);
        assert!(large < m.bandwidth_bps);
        assert!(large > 0.99 * m.bandwidth_bps);
    }

    #[test]
    fn monotone_in_size_and_hops() {
        let m = CostModel::bgq_torus();
        assert!(m.pt2pt(100, 2) < m.pt2pt(200, 2));
        assert!(m.pt2pt(100, 2) < m.pt2pt(100, 3));
    }

    #[test]
    #[should_panic(expected = "bandwidth share")]
    fn zero_share_panics() {
        CostModel::omni_path().pt2pt_shared(1, 1, 0.0);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be finite and positive")]
    fn bad_bandwidth_panics() {
        CostModel::new(0.0, 0.0, 0.0);
    }
}
