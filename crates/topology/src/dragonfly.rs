//! Dragonfly topology, for notional-system design-space exploration.
//!
//! Routers are grouped; routers within a group are all-to-all connected,
//! and every group has at least one global link to every other group
//! (canonical Kim/Dally arrangement). Minimal routing:
//!
//! * same router: 2 hops (node → router → node),
//! * same group: 3 hops (node → router → router → node),
//! * different group: up to 5 hops
//!   (node → router → \[router\] → global → \[router\] → node); we model the
//!   common minimal case where the source router may need one local hop to
//!   reach the router holding the global link, and likewise on the far
//!   side, using a deterministic link assignment.

use crate::{NodeId, Topology};
use serde::{Deserialize, Serialize};

/// Canonical dragonfly: `groups` groups × `routers_per_group` routers ×
/// `nodes_per_router` nodes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dragonfly {
    groups: usize,
    routers_per_group: usize,
    nodes_per_router: usize,
}

impl Dragonfly {
    /// Build a dragonfly. Each router needs `groups - 1` global links
    /// shared across the group, i.e. `routers_per_group` must divide the
    /// global-link requirement or exceed it; we only require ≥ 1 router.
    pub fn new(groups: usize, routers_per_group: usize, nodes_per_router: usize) -> Self {
        assert!(groups >= 1 && routers_per_group >= 1 && nodes_per_router >= 1);
        Dragonfly { groups, routers_per_group, nodes_per_router }
    }

    /// (group, router-within-group) of a node.
    pub fn router_of(&self, n: NodeId) -> (usize, usize) {
        assert!(n.0 < self.n_nodes(), "node {:?} outside topology", n);
        let router = n.0 / self.nodes_per_router;
        (router / self.routers_per_group, router % self.routers_per_group)
    }

    /// The router in `src_group` that owns the global link toward
    /// `dst_group` (deterministic round-robin assignment).
    pub fn gateway(&self, src_group: usize, dst_group: usize) -> usize {
        debug_assert_ne!(src_group, dst_group);
        // Global link to group g is owned by router (g mod routers) —
        // skipping the self-group slot keeps the assignment balanced.
        let slot = if dst_group > src_group { dst_group - 1 } else { dst_group };
        slot % self.routers_per_group
    }

    /// Number of groups.
    pub fn groups(&self) -> usize {
        self.groups
    }
}

impl Topology for Dragonfly {
    fn name(&self) -> &str {
        "dragonfly"
    }

    fn n_nodes(&self) -> usize {
        self.groups * self.routers_per_group * self.nodes_per_router
    }

    fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        if a == b {
            return 0;
        }
        let (ga, ra) = self.router_of(a);
        let (gb, rb) = self.router_of(b);
        if ga == gb {
            if ra == rb {
                2
            } else {
                3
            }
        } else {
            // node -> router (1), maybe local hop to gateway (0/1),
            // global link (1), maybe local hop from far gateway (0/1),
            // router -> node (1).
            let mut h = 3; // injection + global + ejection
            if ra != self.gateway(ga, gb) {
                h += 1;
            }
            if rb != self.gateway(gb, ga) {
                h += 1;
            }
            h
        }
    }

    fn diameter(&self) -> u32 {
        if self.groups > 1 {
            if self.routers_per_group > 1 {
                5
            } else {
                3
            }
        } else if self.routers_per_group > 1 {
            3
        } else if self.nodes_per_router > 1 {
            2
        } else {
            0
        }
    }

    fn mean_hops(&self) -> f64 {
        crate::mean_hops_exhaustive(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hop_classes() {
        let d = Dragonfly::new(3, 4, 2);
        assert_eq!(d.n_nodes(), 24);
        assert_eq!(d.hops(NodeId(0), NodeId(0)), 0);
        assert_eq!(d.hops(NodeId(0), NodeId(1)), 2); // same router
        assert_eq!(d.hops(NodeId(0), NodeId(2)), 3); // same group
        let cross = d.hops(NodeId(0), NodeId(8)); // different group
        assert!((3..=5).contains(&cross));
    }

    #[test]
    fn symmetric() {
        let d = Dragonfly::new(3, 3, 2);
        for a in 0..d.n_nodes() {
            for b in 0..d.n_nodes() {
                assert_eq!(d.hops(NodeId(a), NodeId(b)), d.hops(NodeId(b), NodeId(a)));
            }
        }
    }

    #[test]
    fn diameter_bounds_all_pairs() {
        let d = Dragonfly::new(4, 3, 2);
        let diam = d.diameter();
        for a in 0..d.n_nodes() {
            for b in 0..d.n_nodes() {
                assert!(d.hops(NodeId(a), NodeId(b)) <= diam);
            }
        }
    }

    #[test]
    fn single_group_is_small_world() {
        let d = Dragonfly::new(1, 4, 2);
        assert_eq!(d.diameter(), 3);
    }
}
