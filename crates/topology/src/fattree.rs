//! Two-stage bidirectional fat-tree (the Quartz / Omni-Path fabric shape).
//!
//! Nodes attach to *leaf* (edge) switches; every leaf connects upward to a
//! set of *core* switches. Routing is up-down:
//!
//! * same node: 0 hops (memory),
//! * same leaf switch: 2 hops (node → leaf → node),
//! * different leaf: 4 hops (node → leaf → core → leaf → node).
//!
//! The up:down port ratio (taper) does not change hop counts but scales the
//! effective per-node bandwidth into the core, which the cost model uses
//! for congestion on global traffic.

use crate::{NodeId, Topology};
use serde::{Deserialize, Serialize};

/// A two-stage fat-tree: `n_leaves` leaf switches × `nodes_per_leaf` nodes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FatTree {
    nodes_per_leaf: usize,
    n_leaves: usize,
    /// Uplinks per leaf ÷ downlinks per leaf; 1.0 = full bisection,
    /// 0.5 = 2:1 taper, etc.
    taper: f64,
}

impl FatTree {
    /// Build a fat-tree. `taper` in `(0, 1]`; Quartz's Omni-Path fabric is
    /// approximately 2:1 tapered (`taper = 0.5`).
    pub fn new(n_leaves: usize, nodes_per_leaf: usize, taper: f64) -> Self {
        assert!(n_leaves > 0, "need at least one leaf switch");
        assert!(nodes_per_leaf > 0, "need at least one node per leaf");
        assert!(taper > 0.0 && taper <= 1.0, "taper must be in (0, 1]");
        FatTree { nodes_per_leaf, n_leaves, taper }
    }

    /// Smallest fat-tree with `nodes_per_leaf` downlinks that fits
    /// `n_nodes` nodes.
    pub fn fitting(n_nodes: usize, nodes_per_leaf: usize, taper: f64) -> Self {
        assert!(n_nodes > 0, "need at least one node");
        let n_leaves = n_nodes.div_ceil(nodes_per_leaf);
        FatTree::new(n_leaves, nodes_per_leaf, taper)
    }

    /// Which leaf switch a node hangs off.
    pub fn leaf_of(&self, n: NodeId) -> usize {
        assert!(n.0 < self.n_nodes(), "node {:?} outside topology", n);
        n.0 / self.nodes_per_leaf
    }

    /// Number of leaf switches.
    pub fn n_leaves(&self) -> usize {
        self.n_leaves
    }

    /// Nodes attached per leaf switch.
    pub fn nodes_per_leaf(&self) -> usize {
        self.nodes_per_leaf
    }

    /// Up:down port ratio.
    pub fn taper(&self) -> f64 {
        self.taper
    }

    /// Uplinks per leaf switch: `nodes_per_leaf × taper`, rounded up so a
    /// tapered leaf always keeps at least one path into the core.
    pub fn uplinks_per_leaf(&self) -> usize {
        ((self.nodes_per_leaf as f64) * self.taper).ceil() as usize
    }

    /// Port count of every leaf switch: downlinks to nodes plus uplinks to
    /// the core. Quartz's 48-port Omni-Path leaves are 32 down + 16 up.
    pub fn leaf_degree(&self) -> usize {
        self.nodes_per_leaf + self.uplinks_per_leaf()
    }

    /// Core switches in the second stage: one per leaf uplink, each wired
    /// once to every leaf (zero when a single leaf needs no core).
    pub fn n_core_switches(&self) -> usize {
        if self.n_leaves > 1 {
            self.uplinks_per_leaf()
        } else {
            0
        }
    }

    /// Port count of every core switch: one downlink per leaf.
    pub fn core_degree(&self) -> usize {
        if self.n_leaves > 1 {
            self.n_leaves
        } else {
            0
        }
    }

    /// Total switch count across both stages.
    pub fn n_switches(&self) -> usize {
        self.n_leaves + self.n_core_switches()
    }

    /// Fraction of node-pair traffic that must traverse the core stage
    /// under uniform traffic (used for congestion modeling).
    pub fn core_traffic_fraction(&self) -> f64 {
        if self.n_leaves <= 1 {
            return 0.0;
        }
        let n = self.n_nodes() as f64;
        let same_leaf_peers = (self.nodes_per_leaf - 1) as f64;
        1.0 - same_leaf_peers / (n - 1.0)
    }

    /// Effective per-node share of core bandwidth relative to the injection
    /// link, `taper` at full population.
    pub fn core_bandwidth_share(&self) -> f64 {
        self.taper
    }
}

impl Topology for FatTree {
    fn name(&self) -> &str {
        "fat-tree-2stage"
    }

    fn n_nodes(&self) -> usize {
        self.n_leaves * self.nodes_per_leaf
    }

    fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        assert!(a.0 < self.n_nodes() && b.0 < self.n_nodes(), "node outside topology");
        if a == b {
            0
        } else if self.leaf_of(a) == self.leaf_of(b) {
            2
        } else {
            4
        }
    }

    fn diameter(&self) -> u32 {
        if self.n_leaves > 1 {
            4
        } else if self.nodes_per_leaf > 1 {
            2
        } else {
            0
        }
    }

    fn mean_hops(&self) -> f64 {
        let n = self.n_nodes();
        if n < 2 {
            return 0.0;
        }
        // Closed form: a node has (nodes_per_leaf - 1) 2-hop peers and the
        // rest are 4-hop.
        let same = (self.nodes_per_leaf - 1) as f64;
        let other = (n - self.nodes_per_leaf) as f64;
        (2.0 * same + 4.0 * other) / (n as f64 - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mean_hops_exhaustive;

    #[test]
    fn hop_counts() {
        let ft = FatTree::new(4, 8, 0.5);
        assert_eq!(ft.n_nodes(), 32);
        assert_eq!(ft.hops(NodeId(0), NodeId(0)), 0);
        assert_eq!(ft.hops(NodeId(0), NodeId(7)), 2); // same leaf
        assert_eq!(ft.hops(NodeId(0), NodeId(8)), 4); // next leaf
        assert_eq!(ft.hops(NodeId(31), NodeId(0)), 4);
        assert_eq!(ft.diameter(), 4);
    }

    #[test]
    fn mean_hops_matches_exhaustive() {
        let ft = FatTree::new(3, 5, 1.0);
        let exact = mean_hops_exhaustive(&ft);
        assert!((ft.mean_hops() - exact).abs() < 1e-12);
    }

    #[test]
    fn fitting_rounds_up() {
        let ft = FatTree::fitting(100, 32, 0.5);
        assert_eq!(ft.n_leaves(), 4);
        assert!(ft.n_nodes() >= 100);
    }

    #[test]
    fn single_leaf_degenerates() {
        let ft = FatTree::new(1, 4, 1.0);
        assert_eq!(ft.diameter(), 2);
        assert_eq!(ft.hops(NodeId(0), NodeId(3)), 2);
        assert_eq!(ft.core_traffic_fraction(), 0.0);
    }

    #[test]
    fn core_traffic_fraction_bounds() {
        let ft = FatTree::new(93, 32, 0.5); // Quartz-ish: 2976 nodes
        let f = ft.core_traffic_fraction();
        assert!(f > 0.98 && f < 1.0, "nearly all traffic crosses the core: {f}");
    }

    #[test]
    #[should_panic(expected = "outside topology")]
    fn out_of_range_panics() {
        let ft = FatTree::new(2, 2, 1.0);
        ft.hops(NodeId(0), NodeId(4));
    }

    #[test]
    #[should_panic(expected = "taper")]
    fn bad_taper_panics() {
        FatTree::new(2, 2, 0.0);
    }
}
