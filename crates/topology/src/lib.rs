//! # besst-topology — interconnect topologies and communication cost models
//!
//! BE-SST describes the machine's interconnect abstractly: a topology that
//! answers "how many hops between node A and node B", plus a cost model
//! turning (hops, message size) into time. This crate provides the
//! topologies used by the paper's machines —
//!
//! * [`fattree::FatTree`]: the two-stage bidirectional fat-tree of LLNL
//!   Quartz (Omni-Path),
//! * [`torus::Torus`]: the 5-D torus of LLNL Vulcan (BlueGene/Q),
//! * [`dragonfly::Dragonfly`]: for notional-system DSE,
//!
//! — together with point-to-point ([`cost::CostModel`]) and collective
//! ([`collectives`]) communication cost models used by both the fine-grained
//! testbed and the coarse-grained BE simulator.

#![warn(missing_docs)]

pub mod collectives;
pub mod cost;
pub mod dragonfly;
pub mod fattree;
pub mod torus;

/// A compute-node index within a topology, `0..n_nodes`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

/// Minimal interface every interconnect topology provides.
pub trait Topology: Send + Sync {
    /// Human-readable topology name (used in reports).
    fn name(&self) -> &str;

    /// Number of compute nodes attached.
    fn n_nodes(&self) -> usize;

    /// Switch/router hop count on the routed path between two nodes.
    /// `hops(a, a) == 0` by convention (intra-node communication goes
    /// through memory, not the fabric).
    fn hops(&self, a: NodeId, b: NodeId) -> u32;

    /// Largest hop count between any two nodes.
    fn diameter(&self) -> u32;

    /// Average hop count under a uniform traffic pattern, computed exactly
    /// for small systems and via closed form where available.
    fn mean_hops(&self) -> f64;
}

/// Exhaustive mean-hops helper for tests / small topologies.
pub(crate) fn mean_hops_exhaustive(t: &dyn Topology) -> f64 {
    let n = t.n_nodes();
    if n < 2 {
        return 0.0;
    }
    let mut total = 0u64;
    let mut pairs = 0u64;
    for a in 0..n {
        for b in 0..n {
            if a != b {
                total += t.hops(NodeId(a), NodeId(b)) as u64;
                pairs += 1;
            }
        }
    }
    total as f64 / pairs as f64
}
