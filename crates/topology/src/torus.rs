//! N-dimensional torus (the Vulcan / BlueGene/Q fabric shape).
//!
//! Nodes sit on an N-dimensional grid with wraparound links in every
//! dimension; BG/Q used a 5-D torus. Dimension-ordered shortest-path
//! routing gives a hop count equal to the sum of per-dimension wrap
//! distances.

use crate::{NodeId, Topology};
use serde::{Deserialize, Serialize};

/// A torus with the given per-dimension extents.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Torus {
    dims: Vec<usize>,
    name: String,
}

impl Torus {
    /// Build a torus; every dimension must have extent ≥ 1.
    pub fn new(dims: &[usize]) -> Self {
        assert!(!dims.is_empty(), "torus needs at least one dimension");
        assert!(dims.iter().all(|&d| d >= 1), "torus dimensions must be >= 1");
        Torus { dims: dims.to_vec(), name: format!("torus-{}d", dims.len()) }
    }

    /// The per-dimension extents.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Convert a linear node id to grid coordinates (row-major, first
    /// dimension varies slowest).
    pub fn coords(&self, n: NodeId) -> Vec<usize> {
        assert!(n.0 < self.n_nodes(), "node {:?} outside topology", n);
        let mut rem = n.0;
        let mut out = vec![0; self.dims.len()];
        for (i, &d) in self.dims.iter().enumerate().rev() {
            out[i] = rem % d;
            rem /= d;
        }
        out
    }

    /// Convert grid coordinates back to a linear node id.
    pub fn node_at(&self, coords: &[usize]) -> NodeId {
        assert_eq!(coords.len(), self.dims.len(), "coordinate arity mismatch");
        let mut id = 0usize;
        for (c, &d) in coords.iter().zip(&self.dims) {
            assert!(*c < d, "coordinate {c} outside dimension extent {d}");
            id = id * d + c;
        }
        NodeId(id)
    }

    fn wrap_distance(extent: usize, a: usize, b: usize) -> u32 {
        let fwd = (b + extent - a) % extent;
        let bwd = (a + extent - b) % extent;
        fwd.min(bwd) as u32
    }

    /// The distinct wrap-around neighbors of `n`: ±1 in every dimension,
    /// with the degenerate extents collapsed — extent 1 contributes no
    /// neighbor (the ±1 steps land back on `n`), extent 2 contributes one
    /// (the +1 and −1 steps land on the same node).
    pub fn neighbors(&self, n: NodeId) -> Vec<NodeId> {
        let c = self.coords(n);
        let mut out = Vec::with_capacity(2 * self.dims.len());
        for (i, &d) in self.dims.iter().enumerate() {
            if d == 1 {
                continue;
            }
            let mut step = c.clone();
            step[i] = (c[i] + 1) % d;
            out.push(self.node_at(&step));
            if d > 2 {
                step[i] = (c[i] + d - 1) % d;
                out.push(self.node_at(&step));
            }
        }
        out
    }

    /// Fabric degree of every node: 2 per dimension, minus the collapses
    /// for extents 1 (no link) and 2 (single link). Node-independent — the
    /// torus is vertex-transitive.
    pub fn degree(&self) -> usize {
        self.dims
            .iter()
            .map(|&d| match d {
                1 => 0,
                2 => 1,
                _ => 2,
            })
            .sum()
    }

    /// Distribute `2^exponent` nodes over `n_dims` dimensions as evenly as
    /// possible: each dimension gets `2^(exponent / n_dims)` with the
    /// remainder handed out one doubling at a time from the front.
    ///
    /// `balanced_pow2_dims(5, 20)` is the million-node `16^5` Corten shape;
    /// `balanced_pow2_dims(5, 16)` is `[16, 8, 8, 8, 8]` = 65,536.
    pub fn balanced_pow2_dims(n_dims: usize, exponent: u32) -> Vec<usize> {
        assert!(n_dims > 0, "need at least one dimension");
        let base = exponent as usize / n_dims;
        let rem = exponent as usize % n_dims;
        (0..n_dims).map(|i| 1usize << (base + usize::from(i < rem))).collect()
    }
}

impl Topology for Torus {
    fn name(&self) -> &str {
        &self.name
    }

    fn n_nodes(&self) -> usize {
        self.dims.iter().product()
    }

    fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        let ca = self.coords(a);
        let cb = self.coords(b);
        ca.iter()
            .zip(&cb)
            .zip(&self.dims)
            .map(|((&x, &y), &d)| Self::wrap_distance(d, x, y))
            .sum()
    }

    fn diameter(&self) -> u32 {
        self.dims.iter().map(|&d| (d / 2) as u32).sum()
    }

    fn mean_hops(&self) -> f64 {
        // Per-dimension mean wrap distance; dimensions are independent so
        // means add. For extent d the mean over ordered pairs (including
        // x == y) is:
        //   even d: d/4 * d/(d-? ) — computed exactly below by summation
        // (cheap: extents are small), then combined excluding the
        // all-dims-equal self pair via inclusion of the exact pair count.
        let n = self.n_nodes() as f64;
        if n < 2.0 {
            return 0.0;
        }
        // Sum over all ordered pairs (a, b) of hop counts equals
        // sum over dims of (mean wrap distance in that dim) * n^2.
        let mut total: f64 = 0.0;
        for &d in &self.dims {
            let mut dim_sum = 0u64;
            for a in 0..d {
                for b in 0..d {
                    dim_sum += Self::wrap_distance(d, a, b) as u64;
                }
            }
            // Every (a_i, b_i) pair in this dim appears (n/d)^2 times.
            let reps = (self.n_nodes() / d) as f64;
            total += dim_sum as f64 * reps * reps;
        }
        // Exclude self-pairs (zero distance) from the average.
        total / (n * n - n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mean_hops_exhaustive;

    #[test]
    fn coords_roundtrip() {
        let t = Torus::new(&[3, 4, 5]);
        for i in 0..t.n_nodes() {
            let c = t.coords(NodeId(i));
            assert_eq!(t.node_at(&c), NodeId(i));
        }
    }

    #[test]
    fn wrap_distance_is_shortest() {
        assert_eq!(Torus::wrap_distance(8, 0, 7), 1);
        assert_eq!(Torus::wrap_distance(8, 0, 4), 4);
        assert_eq!(Torus::wrap_distance(8, 2, 2), 0);
        assert_eq!(Torus::wrap_distance(5, 0, 3), 2);
    }

    #[test]
    fn hops_ring() {
        let t = Torus::new(&[6]);
        assert_eq!(t.hops(NodeId(0), NodeId(3)), 3);
        assert_eq!(t.hops(NodeId(0), NodeId(5)), 1);
        assert_eq!(t.diameter(), 3);
    }

    #[test]
    fn hops_symmetric_and_triangle() {
        let t = Torus::new(&[3, 3, 2]);
        for a in 0..t.n_nodes() {
            for b in 0..t.n_nodes() {
                assert_eq!(t.hops(NodeId(a), NodeId(b)), t.hops(NodeId(b), NodeId(a)));
                for c in 0..t.n_nodes() {
                    assert!(
                        t.hops(NodeId(a), NodeId(c))
                            <= t.hops(NodeId(a), NodeId(b)) + t.hops(NodeId(b), NodeId(c))
                    );
                }
            }
        }
    }

    #[test]
    fn mean_hops_matches_exhaustive() {
        for dims in [vec![4usize], vec![3, 4], vec![2, 3, 4]] {
            let t = Torus::new(&dims);
            let exact = mean_hops_exhaustive(&t);
            assert!(
                (t.mean_hops() - exact).abs() < 1e-9,
                "dims {dims:?}: closed {} vs exhaustive {exact}",
                t.mean_hops()
            );
        }
    }

    #[test]
    fn vulcan_shape() {
        // Vulcan was 24k nodes on a 5-D torus; use the BG/Q-documented
        // midplane shape scaled down for the unit test.
        let t = Torus::new(&[4, 4, 4, 4, 2]);
        assert_eq!(t.n_nodes(), 512);
        assert_eq!(t.diameter(), 2 + 2 + 2 + 2 + 1);
    }

    #[test]
    #[should_panic(expected = "outside dimension extent")]
    fn bad_coords_panic() {
        let t = Torus::new(&[2, 2]);
        t.node_at(&[0, 2]);
    }
}
