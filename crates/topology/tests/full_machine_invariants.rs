//! Full-machine topology invariants at real-machine scale.
//!
//! The unit tests in each topology module cover shrunk shapes; this suite
//! pins the *actual* machine presets the paper simulates — Quartz at all
//! 2,988 nodes and Vulcan's 5-D torus at its full 393,216 cores — plus the
//! million-node Corten shape. Under Miri the exhaustive sweeps shrink to
//! sampled subsets (the arithmetic is identical, only the loop bounds
//! change).

use besst_topology::fattree::FatTree;
use besst_topology::torus::Torus;
use besst_topology::{NodeId, Topology};

/// Exhaustive node sweep unless Miri, which gets a strided sample.
fn stride(n: usize) -> usize {
    if cfg!(miri) {
        (n / 97).max(1)
    } else {
        1
    }
}

// ─────────────────────────────────────────────────────────────── Quartz ──

/// Quartz: 2,988 nodes on 32-down/16-up 48-port Omni-Path leaves.
#[test]
fn quartz_fat_tree_degree_counts_at_full_scale() {
    let ft = FatTree::fitting(2988, 32, 0.5);
    assert!(ft.n_nodes() >= 2988);
    assert_eq!(ft.n_leaves(), 94, "2988 nodes / 32 per leaf, rounded up");
    assert_eq!(ft.nodes_per_leaf(), 32);
    assert_eq!(ft.uplinks_per_leaf(), 16, "2:1 taper on 32 downlinks");
    assert_eq!(ft.leaf_degree(), 48, "the documented 48-port leaf");
    assert_eq!(ft.n_core_switches(), 16);
    assert_eq!(ft.core_degree(), 94, "one downlink per leaf");
    assert_eq!(ft.n_switches(), 110);
}

/// Every populated Quartz node hangs off exactly one leaf, leaves fill in
/// order, and hop counts follow the up-down routing classes.
#[test]
fn quartz_leaf_assignment_covers_all_populated_nodes() {
    let ft = FatTree::fitting(2988, 32, 0.5);
    let populated = 2988;
    let mut per_leaf = vec![0usize; ft.n_leaves()];
    for i in (0..populated).step_by(stride(populated)) {
        let leaf = ft.leaf_of(NodeId(i));
        assert_eq!(leaf, i / 32);
        per_leaf[leaf] += 1;
        // Same-leaf traffic is 2 hops, cross-leaf 4, self 0.
        let buddy = (i / 32) * 32; // first node on i's leaf
        let expect = if i == buddy { 0 } else { 2 };
        assert_eq!(ft.hops(NodeId(i), NodeId(buddy)), expect);
        let far = (i + 32) % populated;
        if ft.leaf_of(NodeId(far)) != leaf {
            assert_eq!(ft.hops(NodeId(i), NodeId(far)), 4);
        }
    }
    if !cfg!(miri) {
        // 93 full leaves of 32 plus a 12-node tail: 93×32 + 12 = 2988.
        assert_eq!(per_leaf[..93].iter().sum::<usize>(), 93 * 32);
        assert_eq!(per_leaf[93], 12);
    }
}

// ─────────────────────────────────────────────────────────────── Vulcan ──

/// Vulcan's 5-D torus: every node has degree 10 (extent-6 and extent-8
/// dimensions all ≥ 3) and the neighbor relation is symmetric under
/// wrap-around.
#[test]
fn vulcan_torus_neighbor_symmetry_at_full_scale() {
    let t = Torus::new(&[8, 8, 8, 8, 6]);
    assert_eq!(t.n_nodes(), 24_576);
    assert_eq!(t.degree(), 10);
    for i in (0..t.n_nodes()).step_by(stride(t.n_nodes())) {
        let nbs = t.neighbors(NodeId(i));
        assert_eq!(nbs.len(), 10, "node {i} degree");
        for nb in &nbs {
            assert_eq!(t.hops(NodeId(i), *nb), 1, "neighbors are 1 hop apart");
            assert!(
                t.neighbors(*nb).contains(&NodeId(i)),
                "wrap-around symmetry broken between {i} and {}",
                nb.0
            );
        }
        // Neighbors are distinct and never the node itself.
        let mut sorted: Vec<usize> = nbs.iter().map(|n| n.0).collect();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
        assert!(!sorted.contains(&i));
    }
}

/// The 400k-core view: 24,576 nodes × 16 cores = 393,216 components,
/// partitioned by node. The node-major core numbering covers every core id
/// exactly once — no overlap, no gap — so a per-core component layout maps
/// cleanly onto the node partition.
#[test]
fn vulcan_core_partition_covers_393216_cores() {
    let t = Torus::new(&[8, 8, 8, 8, 6]);
    let cores = 16usize;
    let total = t.n_nodes() * cores;
    assert_eq!(total, 393_216);
    let mut covered = 0usize;
    for node in (0..t.n_nodes()).step_by(stride(t.n_nodes())) {
        let lo = node * cores;
        let hi = lo + cores;
        assert!(hi <= total);
        // Every core id in this node's block maps back to exactly this node.
        for core_id in lo..hi {
            assert_eq!(core_id / cores, node);
        }
        covered += cores;
    }
    if !cfg!(miri) {
        assert_eq!(covered, total, "block partition covers every core exactly once");
    }
}

// ─────────────────────────────────────────────────────────────── Corten ──

/// The million-node Corten shape: balanced 16^5 torus, 2^20 nodes,
/// degree 10, diameter 40 — and the balanced-dims helper lands on the
/// documented weak-scaling ladder.
#[test]
fn corten_balanced_dims_ladder() {
    assert_eq!(Torus::balanced_pow2_dims(5, 16), vec![16, 8, 8, 8, 8]);
    assert_eq!(Torus::balanced_pow2_dims(5, 18), vec![16, 16, 16, 8, 8]);
    assert_eq!(Torus::balanced_pow2_dims(5, 20), vec![16, 16, 16, 16, 16]);
    let t = Torus::new(&Torus::balanced_pow2_dims(5, 20));
    assert_eq!(t.n_nodes(), 1_048_576);
    assert_eq!(t.degree(), 10);
    assert_eq!(t.diameter(), 5 * 8);
}

/// Neighbor symmetry sampled across the million-node torus (exhaustive is
/// 10M lookups — sampled at a prime stride to cover every dimension's
/// wrap-around faces).
#[test]
fn corten_million_node_neighbor_symmetry_sampled() {
    let t = Torus::new(&Torus::balanced_pow2_dims(5, 20));
    let step = if cfg!(miri) { 65_537 } else { 4099 };
    for i in (0..t.n_nodes()).step_by(step) {
        let nbs = t.neighbors(NodeId(i));
        assert_eq!(nbs.len(), 10);
        for nb in &nbs {
            assert!(t.neighbors(*nb).contains(&NodeId(i)));
        }
    }
}

/// Degenerate extents collapse correctly: extent 1 contributes no link,
/// extent 2 exactly one (its +1 and −1 wrap onto the same node).
#[test]
fn degenerate_extent_neighbor_dedup() {
    let t = Torus::new(&[1, 2, 5]);
    // Per-dimension contributions: extent 1 → 0, extent 2 → 1, extent 5 → 2.
    assert_eq!(t.degree(), 3);
    for i in 0..t.n_nodes() {
        let nbs = t.neighbors(NodeId(i));
        assert_eq!(nbs.len(), 3, "node {i}");
        let mut uniq: Vec<usize> = nbs.iter().map(|n| n.0).collect();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 3, "duplicate neighbor at node {i}");
        assert!(!uniq.contains(&i), "self-link at node {i}");
    }
}
