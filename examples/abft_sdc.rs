//! ABFT vs silent data corruption — the fault class checkpointing cannot
//! even see.
//!
//! Three copies of the same executing matrix solver run side by side:
//! a clean reference, an unprotected copy, and a Huang–Abraham-protected
//! copy. Silent data corruptions (bit-flip-style perturbations of the
//! product matrix) strike the latter two at the same steps. The
//! unprotected copy silently diverges; the protected copy locates and
//! corrects every single-element corruption in place and stays
//! bit-faithful to the reference.
//!
//! ```sh
//! cargo run --release --example abft_sdc
//! ```

use besst::abft::{Solver, SolverConfig};

fn main() {
    let n = 32;
    let steps = 40;
    let sdc_steps = [7usize, 15, 23, 31];

    println!("matrix power iteration, n = {n}, {steps} steps");
    println!("SDC strikes at steps {sdc_steps:?} (single corrupted element each)\n");

    let mut clean = Solver::new(n, 2024);
    let mut plain = Solver::new(n, 2024);
    let mut abft = Solver::new(n, 2024);

    println!("{:>5} {:>16} {:>16} {:>12}", "step", "plain drift", "ABFT drift", "corrections");
    for step in 0..steps {
        let sdc = if sdc_steps.contains(&step) {
            // Corrupt a pseudo-random element by a magnitude large enough
            // to matter, small enough to hide from eyeballs.
            Some(((step * 5) % n as usize, (step * 11) % n as usize, 0.37))
        } else {
            None
        };
        clean.step_unprotected(None);
        plain.step_unprotected(sdc);
        abft.step_protected(sdc);
        if step % 8 == 7 {
            println!(
                "{:>5} {:>16.3e} {:>16.3e} {:>12}",
                step + 1,
                clean.diff(&plain),
                clean.diff(&abft),
                abft.corrections
            );
        }
    }

    println!(
        "\nfinal: unprotected ended {:.3e} from the truth (and no alarm was raised);\n\
         ABFT ended {:.3e} away after {} in-place corrections and {} recomputes.",
        clean.diff(&plain),
        clean.diff(&abft),
        abft.corrections,
        abft.recomputes,
    );
    println!(
        "\nOverhead price of that protection (from the work model): {:+.2}% flops at n={n};\n\
         {:+.2}% at n=1024 — ABFT gets cheaper exactly where problems get big.",
        (SolverConfig::new(n, 1).abft_overhead() - 1.0) * 100.0,
        (SolverConfig::new(1024, 1).abft_overhead() - 1.0) * 100.0,
    );
    println!("\nCheckpoint/restart would have restored... the already-corrupted state.");
}
