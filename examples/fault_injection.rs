//! Fault injection across the four quadrants of paper Fig. 4, validated
//! against the Young/Daly analytic model.
//!
//! Case 1: no faults, no FT — the traditional BE-SST simulation.
//! Case 2: faults, no FT — every failure restarts the application.
//! Case 3: no faults, FT — checkpoint overhead only.
//! Case 4: faults + FT — rollback/recovery under FTI semantics.
//!
//! The injector's Case-4 expectation is compared against Daly's
//! closed-form expected runtime at matched parameters; agreement within
//! tens of percent is expected (Daly assumes continuous checkpointing,
//! the simulation checkpoints at step boundaries).
//!
//! ```sh
//! cargo run --release --example fault_injection
//! ```

use besst::analytic::CrParams;
use besst::core::faults::{expected_makespan, FaultProcess, Timeline};
use besst::fti::{CkptLevel, FtiConfig, GroupLayout};

fn main() {
    // A synthetic bulk-synchronous application: 1000 steps of 1 s, L1
    // checkpoints of 5 s every 25 steps, 10 s restarts.
    let steps = 1000usize;
    let step_s = 1.0;
    let period = 25usize;
    let ckpt_s = 5.0;
    let restart_s = 10.0;
    let ranks = 64u32;

    let fti = FtiConfig::l1_only(period as u32);
    let layout = GroupLayout::new(&fti, ranks);
    let ft_timeline = Timeline {
        step_durations: vec![step_s; steps],
        checkpoints: (1..=steps)
            .filter(|s| s % period == 0)
            .map(|s| (s, CkptLevel::L1, ckpt_s))
            .collect(),
        restart_costs: vec![(CkptLevel::L1, restart_s)],
    };
    let no_ft_timeline = Timeline {
        step_durations: vec![step_s; steps],
        checkpoints: vec![],
        restart_costs: vec![],
    };

    println!("workload: {steps} × {step_s:.0}s steps; L1 ckpt {ckpt_s:.0}s every {period} steps\n");
    println!(
        "{:>24} | {:>12} {:>12} {:>12} {:>12}",
        "system MTBF", "Case 1 (s)", "Case 2 (s)", "Case 3 (s)", "Case 4 (s)"
    );
    println!("{}", "-".repeat(80));

    let case1 = no_ft_timeline.failure_free_makespan();
    let case3 = ft_timeline.failure_free_makespan();

    for mtbf in [2000.0f64, 500.0, 200.0] {
        // 64 ranks on 2 nodes; the process models node failures.
        let process = FaultProcess::new(mtbf * 2.0, 2, 0.0);
        let case2 = expected_makespan(&no_ft_timeline, &process, None, 42, 60)
            .expect("no-FT injection cannot reference layout nodes");
        let case4 = expected_makespan(&ft_timeline, &process, Some(&layout), 42, 60)
            .expect("fault scenarios stay inside the layout");
        println!(
            "{:>22}s  | {:>12.0} {:>12} {:>12.0} {:>12.0}",
            mtbf,
            case1,
            if case2.is_finite() { format!("{case2:.0}") } else { "∞".into() },
            case3,
            case4,
        );

        // Analytic cross-check for Case 4.
        let cr = CrParams::new(ckpt_s, restart_s, mtbf);
        let daly = cr.expected_runtime(steps as f64 * step_s, period as f64 * step_s);
        let young = cr.young_interval();
        println!(
            "{:>24} | Daly expectation {:.0}s (ratio {:.2}); Young τ* = {:.0}s ≈ {:.0} steps",
            "", daly, case4 / daly, young, young / step_s
        );
    }

    println!(
        "\nAt a gentle MTBF checkpointing is pure overhead (Case 3 > Case 1, Case 4 ≈ Case 3);\n\
         as the MTBF shrinks, Case 2 explodes (restart-from-scratch is exponential in the\n\
         fault rate) while Case 4 degrades gracefully — the classic C/R trade."
    );
}
