//! Fault-tolerance design-space exploration — the paper's motivating
//! workload.
//!
//! A designer has to pick a checkpointing level and period for a
//! LULESH-class application on a Quartz-class machine. Running every
//! configuration on the real machine is expensive; FT-aware BE-SST
//! predicts the whole grid from one calibration campaign. This example
//! sweeps FT level × checkpoint period × rank count and prints both the
//! failure-free overhead and the expected makespan under a harsh fault
//! rate — the two sides of the cost/benefit balance.
//!
//! ```sh
//! cargo run --release --example ft_design_space
//! ```

use besst::apps::lulesh::{self, LuleshConfig};
use besst::core::beo::ArchBeo;
use besst::core::faults::{expected_makespan, FaultProcess, Timeline};
use besst::core::sim::{simulate, SimConfig};
use besst::experiments::calibration::{calibrate, CalibrationConfig, ModelMethod};
use besst::fti::{CkptLevel, FtiConfig, GroupLayout, LevelSchedule};
use besst::models::Interpolation;

const EPR: u32 = 15;
const STEPS: u32 = 400;
const RANKS_PER_NODE: u32 = 36;

fn scenario(level: Option<CkptLevel>, period: u32) -> FtiConfig {
    match level {
        None => FtiConfig::none(),
        Some(level) => FtiConfig::paper_case_study(vec![LevelSchedule { level, period }]),
    }
}

fn main() {
    let machine = besst::machine::presets::quartz();

    // One calibration campaign covers every kernel the sweep needs: FTI
    // levels 1-4 all get models.
    let all_levels = FtiConfig {
        schedules: CkptLevel::ALL
            .iter()
            .map(|&level| LevelSchedule { level, period: 40 })
            .collect(),
        ..FtiConfig::paper_case_study(vec![])
    };
    let grid: Vec<(u32, u32)> =
        [8u32, 64, 216].iter().map(|&ranks| (EPR, ranks)).collect();
    let cal = calibrate(
        &machine,
        |epr, ranks| {
            lulesh::instrumented_regions(&LuleshConfig::new(epr, ranks), &all_levels, &machine, RANKS_PER_NODE)
        },
        &grid,
        &CalibrationConfig {
            samples_per_point: 8,
            method: ModelMethod::Table(Interpolation::Multilinear),
            ..Default::default()
        },
    );

    println!(
        "FT design space for LULESH (epr {EPR}, {STEPS} steps) — failure-free overhead\n\
         and expected makespan under ~4 faults per run:\n"
    );
    println!(
        "{:6} {:6} {:8} | {:>12} {:>10} | {:>14}",
        "ranks", "level", "period", "no-fault (s)", "overhead", "faulted (s)"
    );
    println!("{}", "-".repeat(70));

    for &ranks in &[64u32, 216] {
        let cfg = LuleshConfig::new(EPR, ranks);
        let arch = ArchBeo::new(machine.clone(), RANKS_PER_NODE, cal.bundle.clone());
        let n_nodes = ranks.div_ceil(RANKS_PER_NODE);

        // Baseline (no FT) defines the fault rate for the comparison.
        let base_app = lulesh::appbeo(&cfg, &FtiConfig::none(), STEPS);
        let base = simulate(&base_app, &arch, &SimConfig::default())
            .expect("calibrated bundle covers LULESH");
        let node_mtbf = base.total_seconds * n_nodes as f64 / 4.0;
        let process = FaultProcess::new(node_mtbf, n_nodes, 0.2);

        let mut candidates: Vec<(Option<CkptLevel>, u32)> = vec![(None, 0)];
        for level in [CkptLevel::L1, CkptLevel::L2, CkptLevel::L4] {
            for period in [20u32, 40, 80] {
                candidates.push((Some(level), period));
            }
        }

        for (level, period) in candidates {
            let fti = scenario(level, period.max(1));
            let app = lulesh::appbeo(&cfg, &fti, STEPS);
            let res = simulate(&app, &arch, &SimConfig::default())
                .expect("calibrated bundle covers LULESH");
            let overhead =
                100.0 * (res.total_seconds - base.total_seconds) / base.total_seconds;

            let restart_costs = match level {
                None => vec![],
                Some(l) => {
                    let tb = besst::machine::Testbed::new(&machine);
                    let blocks = lulesh::restart_blocks_for(&cfg, &fti, &machine, RANKS_PER_NODE, l);
                    vec![(l, tb.deterministic_region_cost(&blocks))]
                }
            };
            let tl = Timeline::from_completions(
                &res.step_completions,
                &res.ckpt_completions,
                restart_costs,
            );
            let layout = level.map(|_| GroupLayout::new(&fti, ranks));
            let faulted = expected_makespan(&tl, &process, layout.as_ref(), 0xD5E, 25)
                .expect("fault scenarios stay inside the layout");

            let level_label = level.map_or("none".to_string(), |l| l.to_string());
            let period_label = if level.is_some() { period.to_string() } else { "-".into() };
            println!(
                "{:6} {:6} {:8} | {:12.4} {:9.1}% | {:>14}",
                ranks,
                level_label,
                period_label,
                res.total_seconds,
                overhead,
                if faulted.is_finite() { format!("{faulted:.4}") } else { "∞ (livelock)".into() },
            );
        }
        println!("{}", "-".repeat(70));
    }
    println!(
        "\nReading the table: overhead is what FT *costs* when nothing fails;\n\
         the faulted column is what it *buys* when failures arrive. The best\n\
         design is the cheapest faulted makespan — rarely the cheapest overhead."
    );
}
