//! Architectural DSE on notional machines — BE-SST's plug-and-play
//! promise.
//!
//! "BE-SST also facilitates DSE through the plug-and-play nature of SST
//! to perform notional system simulation. Models from different machine
//! subsystems ... can be used together to construct and simulate full
//! notional system designs." We calibrate CMT-bone per machine on three
//! systems — the synthetic Quartz, the synthetic Vulcan, and a notional
//! dragonfly — and predict scaling beyond each machine's benchmarked
//! region, exactly the Fig. 1 workflow applied across architectures.
//!
//! ```sh
//! cargo run --release --example notional_machine
//! ```

use besst::apps::cmtbone::{self, CmtBoneConfig};
use besst::experiments::calibration::{calibrate, CalibrationConfig, ModelMethod};
use besst::machine::{presets, Machine};
use besst::models::SymRegConfig;

const ELEMENTS: u32 = 128;
const POLY: u32 = 5;

fn study(machine: &Machine, benchmarked: &[u32], predicted: &[u32]) {
    // Calibrate the timestep model on the benchmarked rank range.
    let grid: Vec<(u32, u32)> = benchmarked.iter().map(|&r| (ELEMENTS, r)).collect();
    let cal = calibrate(
        machine,
        |elements, ranks| {
            cmtbone::instrumented_regions(&CmtBoneConfig::new(elements, POLY, ranks))
        },
        &grid,
        &CalibrationConfig {
            samples_per_point: 8,
            method: ModelMethod::SymReg,
            symreg: SymRegConfig { population: 128, generations: 25, ..Default::default() },
            symreg_restarts: 2,
            ..Default::default()
        },
    );
    let model = cal.bundle.get(cmtbone::kernels::TIMESTEP).expect("calibrated");

    println!(
        "\n{} ({} nodes, {}):",
        machine.name,
        machine.n_nodes,
        machine.interconnect.topology().name()
    );
    println!("  fitted timestep model: {}", model.describe());
    for (&ranks, region) in benchmarked
        .iter()
        .zip(std::iter::repeat("validated"))
        .chain(predicted.iter().zip(std::iter::repeat("PREDICTED")))
    {
        let t = model.predict(&[ELEMENTS as f64, POLY as f64, ranks as f64]);
        println!("  {ranks:>9} ranks: {:>10.3} ms/timestep  [{region}]", t * 1e3);
    }
}

fn main() {
    println!(
        "CMT-bone ({} elements/rank, N={}) across three architectures —\n\
         validation region + notional-scale prediction:",
        ELEMENTS, POLY
    );

    study(&presets::quartz(), &[64, 512, 4096, 32_768], &[100_000]);
    study(&presets::vulcan(), &[2048, 16_384, 131_072], &[400_000, 1_000_000]);
    study(&presets::notional_dragonfly(), &[64, 512, 4096], &[33_000]);

    println!(
        "\nSame AppBEO, three ArchBEOs: swapping the machine description is\n\
         the whole cost of exploring a notional architecture."
    );
}
