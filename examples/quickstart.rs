//! Quickstart: the whole FT-aware BE-SST workflow on one page.
//!
//! 1. describe a machine,
//! 2. run the Model Development phase (benchmark → fit models),
//! 3. run FT-aware full-system simulations for three checkpointing
//!    scenarios, and
//! 4. compare their predicted overheads.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use besst::apps::lulesh::{self, LuleshConfig};
use besst::core::beo::ArchBeo;
use besst::core::sim::{simulate, SimConfig};
use besst::experiments::calibration::{calibrate, CalibrationConfig, ModelMethod};
use besst::fti::FtiConfig;
use besst::models::Interpolation;

fn main() {
    // ── 1. The machine ────────────────────────────────────────────────
    // The synthetic Quartz: 2,988 dual-Xeon nodes on an Omni-Path
    // fat-tree, with calibrated noise models standing in for the real
    // allocation the paper benchmarked on.
    let machine = besst::machine::presets::quartz();
    println!("machine: {} ({} nodes, {} cores/node)", machine.name, machine.n_nodes, machine.node.cores());

    // ── 2. Model Development ──────────────────────────────────────────
    // Benchmark the instrumented kernels (timestep + checkpoint levels)
    // over a small parameter grid and organize the samples into lookup
    // tables. Swap `Table` for `SymReg` to use the paper's GP fitter.
    let fti_all = FtiConfig::l1_l2(40);
    let grid: Vec<(u32, u32)> = [5u32, 10, 15]
        .iter()
        .flat_map(|&epr| [8u32, 64].iter().map(move |&r| (epr, r)))
        .collect();
    let cal = calibrate(
        &machine,
        |epr, ranks| {
            lulesh::instrumented_regions(&LuleshConfig::new(epr, ranks), &fti_all, &machine, 36)
        },
        &grid,
        &CalibrationConfig {
            samples_per_point: 8,
            method: ModelMethod::Table(Interpolation::Multilinear),
            ..Default::default()
        },
    );
    println!("\ncalibrated models:");
    for k in &cal.kernels {
        println!("  {:18} {} (fit MAPE {:.2}%)", k.kernel, k.model.describe(), k.fit_mape);
    }

    // ── 3. FT-aware full-system simulation ────────────────────────────
    let cfg = LuleshConfig::new(10, 64);
    let arch = ArchBeo::new(machine, 36, cal.bundle);
    let scenarios = [
        ("No FT", FtiConfig::none()),
        ("L1 @40", FtiConfig::l1_only(40)),
        ("L1+L2 @40", FtiConfig::l1_l2(40)),
    ];
    println!("\n200-timestep LULESH run, epr 10, 64 ranks:");
    let mut baseline = None;
    for (label, fti) in scenarios {
        let app = lulesh::appbeo(&cfg, &fti, 200);
        let res = simulate(&app, &arch, &SimConfig::default())
            .expect("calibrated bundle covers LULESH");
        let base = *baseline.get_or_insert(res.total_seconds);
        println!(
            "  {label:10}  total {:8.4} s   checkpoints {:2}   overhead {:6.1}%",
            res.total_seconds,
            res.n_checkpoints(),
            100.0 * (res.total_seconds - base) / base,
        );
    }

    // ── 4. The DSE punchline ──────────────────────────────────────────
    println!(
        "\nEach scenario is one point of the fault-tolerance design space;\n\
         `repro fig9` sweeps the full problem-size × ranks × FT-level grid."
    );
}
