# FT-BE-SST task runner. Install `just` (https://github.com/casey/just)
# or copy the underlying cargo commands by hand — every recipe is one line.

# List available recipes.
default:
    @just --list

# Build the whole workspace in release mode.
build:
    cargo build --workspace --release

# Run the full unit/property/integration suite.
test:
    cargo test --workspace

# Deterministic Simulation Testing: 64-seed blocks per fault preset plus
# golden-snapshot regressions. See docs/DST_GUIDE.md.
dst:
    cargo test -p besst-des --test dst_substrate

# Re-bless DST golden snapshots after an intentional trajectory change.
dst-bless:
    DST_BLESS=1 cargo test -p besst-des --test dst_substrate

# Buggify fault-injection unit tests only.
buggify:
    cargo test -p besst-des buggify

# Fig. 4 Cases 2 & 4: overlay vs online fault injection side by side.
# See docs/FAULT_INJECTION.md.
faults:
    cargo run --release -p besst-experiments --bin repro -- cases24

# Silent-data-corruption gates: engine bit-identity, overlay equivalence,
# Young–Daly bound under detected-SDC rollback, and zero-SilentlyWrong
# with ABFT + checkpoint verification armed. See docs/FAULT_INJECTION.md.
sdc:
    cargo test -p besst-core --test sdc_injection

# besst-lint: repo-specific determinism/soundness rules D1–D9 plus the
# stale-allow audit over every workspace crate. Exit 1 = findings,
# exit 2 = internal linter error. See docs/STATIC_ANALYSIS.md.
lint:
    cargo run -p xtask -- lint

# Machine-readable findings: the besst-lint-json-v1 document on stdout
# (byte-deterministic across runs — CI cmp's two of them).
lint-json:
    cargo run -p xtask -- lint --format json

# Scenario-server smoke: the besst-serve suites (protocol, cache-key
# properties, TCP smoke, the 1k-query chaos gate), then the `besst serve`
# binary over stdio JSONL — fault-free and under the `serve` chaos
# preset. See docs/SCENARIO_SERVER.md.
serve-smoke:
    cargo test -p besst-serve
    printf '{"id":1,"steps":20,"ranks":8}\n{"id":2,"mode":"baseline"}\n\n' | cargo run --release --bin besst -- serve
    printf '{"id":1,"steps":20,"ranks":8}\n{"id":2,"mode":"baseline"}\n\n' | cargo run --release --bin besst -- serve --chaos 190

# Storm survival: the sharded-cluster suites (ring properties, streaming
# reassembly, the crash-storm chaos gate), then the `besst serve` binary
# sharded 4 ways under the `storm` preset — whole shards die mid-batch
# and every answer must still land exactly once. See docs/SCENARIO_SERVER.md.
serve-storm:
    cargo test -p besst-serve --test ring_properties --test stream --test storm
    printf '{"mode":"stream","v":2}\n{"id":1,"steps":20,"ranks":8}\n{"id":2,"mode":"baseline"}\n\n' | cargo run --release --bin besst -- serve --shards 4 --replication 3 --storm 2

# Markdown link checker: every relative link and docs/*.md cross-reference
# in README.md, DESIGN.md and docs/ must resolve. See docs/README.md.
doc-links:
    cargo run -p xtask -- doc-links

# Miri (nightly): undefined-behavior interpreter over the besst-des unit
# tests. Heavy DST roundtrips are `#[cfg_attr(miri, ignore)]`-gated.
miri:
    cargo +nightly miri test -p besst-des --lib

# ThreadSanitizer (nightly): data-race detection over the parallel engine,
# driven by a reduced DST seed block across every partitioning.
tsan:
    RUSTFLAGS="-Zsanitizer=thread" DST_SEEDS=4 cargo +nightly test -Zbuild-std --target x86_64-unknown-linux-gnu -p besst-des --test dst_substrate

# Exhaustive-interleaving model check of the parallel engine's cross-rank
# handoff (pure std; the loom variant needs `--cfg loom` + the loom crate).
handoff:
    cargo test -p besst-des --test rank_handoff

# cargo-deny: advisories, license allow-list, duplicate-version bans.
deny:
    cargo deny check

# Build API docs, treating rustdoc warnings as errors (matches CI).
doc:
    RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

# Regenerate every paper table and figure.
repro:
    cargo run --release -p besst-experiments --bin repro -- all

# Criterion benchmarks.
bench:
    cargo bench -p besst-bench

# Pinned-seed benchmark report (results/BENCH_*.json). Regenerates the
# committed numbers; run on a quiet machine. See docs/PERFORMANCE.md.
bench-json:
    cargo run --release -p xtask -- bench-json --out results/BENCH_0011.json

# Per-component memory regression gate: flat-store substrate builds from
# 64k to 1M components must stay within ±10% bytes/component. Runs the
# xtask binary (the only place the counting allocator is installed).
mem-gate:
    cargo run --release -p xtask -- mem-gate

# Seconds-scale benchmark smoke: the miniature bench-json configuration
# (schema + determinism gates), the scheduler equivalence suite, the
# storage-equivalence wall, and the 64k→1M memory regression gate.
# This is what CI runs; it validates the measurement path, not the numbers.
bench-smoke:
    cargo test -p xtask --test bench_json
    cargo test -p besst-des --test scheduler_prop
    cargo test -p besst-des --test storage_equiv
    cargo run --release -p xtask -- bench-json --miniature > /dev/null
    cargo run --release -p xtask -- mem-gate
