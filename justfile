# FT-BE-SST task runner. Install `just` (https://github.com/casey/just)
# or copy the underlying cargo commands by hand — every recipe is one line.

# List available recipes.
default:
    @just --list

# Build the whole workspace in release mode.
build:
    cargo build --workspace --release

# Run the full unit/property/integration suite.
test:
    cargo test --workspace

# Deterministic Simulation Testing: 64-seed blocks per fault preset plus
# golden-snapshot regressions. See docs/DST_GUIDE.md.
dst:
    cargo test -p besst-des --test dst_substrate

# Re-bless DST golden snapshots after an intentional trajectory change.
dst-bless:
    DST_BLESS=1 cargo test -p besst-des --test dst_substrate

# Buggify fault-injection unit tests only.
buggify:
    cargo test -p besst-des buggify

# Fig. 4 Cases 2 & 4: overlay vs online fault injection side by side.
# See docs/FAULT_INJECTION.md.
faults:
    cargo run --release -p besst-experiments --bin repro -- cases24

# Build API docs, treating rustdoc warnings as errors (matches CI).
doc:
    RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

# Regenerate every paper table and figure.
repro:
    cargo run --release -p besst-experiments --bin repro -- all

# Criterion benchmarks.
bench:
    cargo bench -p besst-bench
