//! `besst` — command-line entry points for the workspace.
//!
//! Today this hosts one subcommand: `besst serve`, the hardened
//! scenario server (see `docs/SCENARIO_SERVER.md`). Argument parsing is
//! hand-rolled — the offline stub registry carries no clap.

use besst::serve::net::{serve_lines, serve_tcp};
use besst::serve::{Chaos, ServeConfig, Server};
use std::net::TcpListener;
use std::process::ExitCode;

const USAGE: &str = "\
besst serve [OPTIONS]

Serve scenario queries as JSONL: one request object per line, a blank
line closes a batch, one response line per query (docs/SCENARIO_SERVER.md).

Options:
  --tcp ADDR          listen on ADDR (e.g. 127.0.0.1:7077) instead of stdio
  --max-conns N       with --tcp: exit after N connections (default: forever)
  --chaos SEED        enable the `serve` buggify preset, keyed by SEED
  --storm SEED        enable the harsher `storm` preset (whole-shard
                      crash bursts on top of `serve`), keyed by SEED
  --shards N          shard the server N ways on a consistent-hash ring
                      (default 1: the classic single-shard server)
  --replication N     quarantine/cache owners per key (default: 2 when
                      sharded, clamped to the shard count)
  --workers N         rayon worker threads (default: all cores)
  --queue N           admission queue bound per batch (default 4096)
  --cache N           baseline cache capacity, entries (default 64)
  --deadline-ms N     default per-query soft deadline (default 10000)
  --budget-ms N       per-batch time budget (default 60000)
  -h, --help          this text
";

fn fail(msg: &str) -> ExitCode {
    eprintln!("besst: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => serve_cmd(&args[1..]),
        Some("-h" | "--help") | None => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => fail(&format!("unknown subcommand `{other}`")),
    }
}

fn serve_cmd(args: &[String]) -> ExitCode {
    let mut cfg = ServeConfig::default();
    let mut tcp: Option<String> = None;
    let mut max_conns: Option<u64> = None;
    let mut replication: Option<u32> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut num = |name: &str| -> Result<u64, String> {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse::<u64>()
                .map_err(|e| format!("{name}: {e}"))
        };
        match arg.as_str() {
            "--tcp" => match it.next() {
                Some(a) => tcp = Some(a.clone()),
                None => return fail("--tcp needs an address"),
            },
            "--max-conns" => match num("--max-conns") {
                Ok(n) => max_conns = Some(n),
                Err(e) => return fail(&e),
            },
            "--chaos" => match num("--chaos") {
                Ok(seed) => cfg.chaos = Some(Chaos::new(seed)),
                Err(e) => return fail(&e),
            },
            "--storm" => match num("--storm") {
                Ok(seed) => cfg.chaos = Some(Chaos::storm(seed)),
                Err(e) => return fail(&e),
            },
            "--shards" => match num("--shards") {
                Ok(n) if n >= 1 && n <= 1024 => {
                    // Preserve an earlier --replication override; only
                    // the topology changes.
                    let replication = replication.unwrap_or(2.min(n as u32));
                    cfg.cluster = besst::serve::ClusterConfig {
                        shards: n as u32,
                        replication,
                        ..cfg.cluster
                    };
                }
                Ok(_) => return fail("--shards must be in 1..=1024"),
                Err(e) => return fail(&e),
            },
            "--replication" => match num("--replication") {
                Ok(n) if n >= 1 => {
                    replication = Some(n as u32);
                    cfg.cluster.replication = n as u32;
                }
                Ok(_) => return fail("--replication must be at least 1"),
                Err(e) => return fail(&e),
            },
            "--workers" => match num("--workers") {
                Ok(n) => cfg.workers = n as usize,
                Err(e) => return fail(&e),
            },
            "--queue" => match num("--queue") {
                Ok(n) => cfg.queue_capacity = n as usize,
                Err(e) => return fail(&e),
            },
            "--cache" => match num("--cache") {
                Ok(n) => cfg.cache_capacity = n as usize,
                Err(e) => return fail(&e),
            },
            "--deadline-ms" => match num("--deadline-ms") {
                Ok(n) => cfg.deadline_ms = n,
                Err(e) => return fail(&e),
            },
            "--budget-ms" => match num("--budget-ms") {
                Ok(n) => cfg.batch_budget_ms = n,
                Err(e) => return fail(&e),
            },
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return fail(&format!("unknown option `{other}`")),
        }
    }

    let server = match Server::new(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("besst serve: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };

    let result = match tcp {
        Some(addr) => {
            let listener = match TcpListener::bind(&addr) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("besst serve: cannot bind {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match listener.local_addr() {
                Ok(a) => eprintln!("besst serve: listening on {a}"),
                Err(_) => eprintln!("besst serve: listening on {addr}"),
            }
            serve_tcp(&server, &listener, max_conns).map(|summary| {
                eprintln!(
                    "besst serve: {} connections, {} batches",
                    summary.connections, summary.batches
                );
            })
        }
        None => {
            // `Stdout` (unlike `StdoutLock`) is Send, which the shared
            // response sink requires; line buffering is flushed per batch.
            serve_lines(&server, std::io::stdin().lock(), std::io::stdout(), 0).map(|batches| {
                eprintln!("besst serve: {batches} batches served");
            })
        }
    };

    let stats = server.stats();
    eprintln!(
        "besst serve: {} received, {} ok, {} errors, {} shed, {} timeouts, \
         {} quarantined, {} panics caught, {} retries",
        stats.received,
        stats.ok,
        stats.errors,
        stats.shed,
        stats.timeouts,
        stats.quarantined,
        stats.panics_caught,
        stats.retries
    );
    let cache = server.cache_stats();
    eprintln!(
        "besst serve: cache {} hits / {} misses, {} corruptions, {} evictions",
        cache.hits, cache.misses, cache.corruptions, cache.evictions
    );
    if server.config().cluster.shards > 1 {
        let cluster = server.cluster_stats();
        eprintln!(
            "besst serve: cluster {} shards x{} replication, {} alive, {} deaths, \
             {} rejoins, {} failovers, {} resynced keys",
            cluster.shards,
            cluster.replication,
            cluster.alive,
            cluster.deaths,
            cluster.rejoins,
            cluster.failovers,
            cluster.resynced_keys
        );
    }
    if server.config().chaos.is_some() {
        let chaos = server.chaos_stats();
        eprintln!(
            "besst serve: chaos {} crashes, {} delays, {} dropped, {} duplicated, \
             {} corrupted, {} shard crashes",
            chaos.worker_crashes,
            chaos.worker_delays,
            chaos.dropped_responses,
            chaos.duplicated_queries,
            chaos.cache_corruptions,
            chaos.shard_crashes
        );
    }

    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("besst serve: transport error: {e}");
            ExitCode::FAILURE
        }
    }
}
