//! # besst — fault-tolerance-aware system-level modeling and simulation
//!
//! A from-scratch Rust reproduction of *"Incorporating Fault-Tolerance
//! Awareness into System-Level Modeling and Simulation"* (Johnson & Lam,
//! IEEE CLUSTER 2021): the BE-SST coarse-grained modeling & simulation
//! workflow with its fault-tolerance-awareness extensions, plus every
//! substrate it stands on.
//!
//! This crate is a facade: it re-exports the workspace members under
//! stable names. See the individual crates for the full APIs:
//!
//! * [`des`] — SST-like (parallel) discrete-event simulation engine
//! * [`topology`] — fat-tree / torus / dragonfly interconnects & cost models
//! * [`machine`] — hardware descriptions, noise models, the synthetic testbed
//! * [`fti`] — multi-level checkpointing (FTI) with a real Reed–Solomon codec
//! * [`models`] — lookup-table & symbolic-regression performance models
//! * [`core`] — BEOs, the FT-aware BE simulator, Monte Carlo, fault injection
//! * [`apps`] — LULESH and CMT-bone proxy applications
//! * [`analytic`] — Amdahl/Gustafson/Young–Daly/Cavelan/Zheng/Hussain/Jin baselines
//! * [`experiments`] — regeneration harness for every table and figure
//! * [`serve`] — the hardened scenario server (`besst serve`, JSONL over
//!   stdio/TCP, fault-injected against itself; `docs/SCENARIO_SERVER.md`)
//!
//! ## Quickstart
//!
//! ```
//! use besst::apps::lulesh::{self, LuleshConfig};
//! use besst::core::sim::{simulate, SimConfig};
//! use besst::core::beo::ArchBeo;
//! use besst::fti::FtiConfig;
//! use besst::experiments::calibration::{calibrate, CalibrationConfig, ModelMethod};
//! use besst::models::Interpolation;
//!
//! // 1. Describe the machine (the synthetic Quartz preset).
//! let machine = besst::machine::presets::quartz();
//!
//! // 2. Model Development: benchmark the instrumented kernels on the
//! //    testbed and fit performance models (table method here, fast).
//! let fti = FtiConfig::l1_only(10);
//! let grid = [(5u32, 8u32), (10, 8)];
//! let cal = calibrate(
//!     &machine,
//!     |epr, ranks| lulesh::instrumented_regions(
//!         &LuleshConfig::new(epr, ranks), &fti, &machine, 36),
//!     &grid,
//!     &CalibrationConfig {
//!         samples_per_point: 4,
//!         method: ModelMethod::Table(Interpolation::Multilinear),
//!         ..Default::default()
//!     },
//! );
//!
//! // 3. Co-Design: simulate the FT-aware application.
//! let app = lulesh::appbeo(&LuleshConfig::new(10, 8), &fti, 30);
//! let arch = ArchBeo::new(machine, 36, cal.bundle);
//! let result = simulate(&app, &arch, &SimConfig::default()).expect("all kernels bound");
//! assert_eq!(result.step_completions.len(), 30);
//! assert_eq!(result.n_checkpoints(), 3);
//! ```

#![warn(missing_docs)]

pub use besst_analytic as analytic;
pub use besst_apps as apps;
pub use besst_core as core;
pub use besst_des as des;
pub use besst_abft as abft;
pub use besst_experiments as experiments;
pub use besst_fti as fti;
pub use besst_machine as machine;
pub use besst_models as models;
pub use besst_serve as serve;
pub use besst_topology as topology;
