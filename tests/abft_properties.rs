//! Property tests for the ABFT substrate: Huang–Abraham correction over
//! random matrices, corruption positions, and magnitudes; and the
//! solver-level guarantee that protected runs stay on the clean
//! trajectory.

use besst::abft::checksum::{protected_mul, recommended_tol, verify_and_correct, AbftOutcome, Mat};
use besst::abft::Solver;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any single data-element corruption above the tolerance is located
    /// exactly and corrected to within rounding.
    #[test]
    fn single_corruption_always_corrected(
        n in 3usize..16,
        seed in any::<u64>(),
        row_frac in 0.0f64..1.0,
        col_frac in 0.0f64..1.0,
        delta in prop_oneof![Just(0.5f64), Just(-1.25), Just(3.0), Just(-0.75)],
    ) {
        let a = Mat::random(n, n, seed);
        let b = Mat::random(n, n, seed ^ 0xBEEF);
        let clean = protected_mul(&a, &b);
        let tol = recommended_tol(n, 1.0);
        let r = ((row_frac * n as f64) as usize).min(n - 1);
        let c = ((col_frac * n as f64) as usize).min(n - 1);
        let mut corrupted = clean.clone();
        corrupted.set(r, c, corrupted.get(r, c) + delta);
        match verify_and_correct(&mut corrupted, tol) {
            AbftOutcome::Corrected { row, col, .. } => {
                prop_assert_eq!((row, col), (r, c), "located the corruption");
                prop_assert!((corrupted.get(r, c) - clean.get(r, c)).abs() < tol * 8.0);
            }
            other => prop_assert!(false, "expected correction, got {other:?}"),
        }
    }

    /// A clean product never triggers a (false-positive) correction.
    #[test]
    fn no_false_positives(n in 2usize..20, seed in any::<u64>()) {
        let a = Mat::random(n, n, seed);
        let b = Mat::random(n, n, seed ^ 0xCAFE);
        let mut c = protected_mul(&a, &b);
        prop_assert_eq!(verify_and_correct(&mut c, recommended_tol(n, 1.0)), AbftOutcome::Clean);
    }

    /// Two corruptions in distinct rows AND columns are always flagged
    /// uncorrectable — never silently "fixed" wrongly.
    #[test]
    fn double_corruption_detected(
        n in 4usize..14,
        seed in any::<u64>(),
        pos in 0usize..100,
    ) {
        let a = Mat::random(n, n, seed);
        let b = Mat::random(n, n, seed ^ 0xD00D);
        let mut c = protected_mul(&a, &b);
        let r1 = pos % (n / 2);
        let c1 = (pos / 7) % (n / 2);
        let r2 = n / 2 + pos % (n - n / 2);
        let c2 = n / 2 + (pos / 3) % (n - n / 2);
        c.set(r1, c1, c.get(r1, c1) + 1.0);
        c.set(r2, c2, c.get(r2, c2) - 2.0);
        prop_assert_eq!(
            verify_and_correct(&mut c, recommended_tol(n, 1.0)),
            AbftOutcome::Uncorrectable
        );
    }

    /// Solver-level: wherever single SDCs strike, the protected run ends
    /// bit-close to the clean trajectory and counts exactly the injected
    /// corruptions.
    #[test]
    fn protected_solver_tracks_clean_run(
        seed in any::<u64>(),
        strikes in proptest::collection::btree_set(0usize..20, 0..4),
    ) {
        let n = 10u32;
        let mut clean = Solver::new(n, seed);
        let mut abft = Solver::new(n, seed);
        for step in 0..20 {
            let sdc = if strikes.contains(&step) {
                Some((step % 10, (step * 3 + 1) % 10, 1.0 + step as f64 * 0.1))
            } else {
                None
            };
            clean.step_unprotected(None);
            abft.step_protected(sdc);
        }
        prop_assert_eq!(abft.corrections as usize, strikes.len());
        prop_assert_eq!(abft.recomputes, 0);
        prop_assert!(clean.diff(&abft) < 1e-8, "drift {}", clean.diff(&abft));
    }
}

/// The ABFT work-model overhead formula matches a direct flop count.
#[test]
fn overhead_formula_is_consistent() {
    use besst::abft::SolverConfig;
    for n in [8u32, 64, 512] {
        let cfg = SolverConfig::new(n, 1);
        let n = n as f64;
        let expect = (2.0 * (n + 1.0) * (n + 1.0) * n + 4.0 * n * n) / (2.0 * n * n * n);
        assert!((cfg.abft_overhead() - expect).abs() < 1e-12);
        // Asymptotically 1 + 2/n.
        assert!((cfg.abft_overhead() - 1.0 - 2.0 / n).abs() < 8.0 / (n * n) + 2.0 / n);
    }
}
