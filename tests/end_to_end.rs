//! End-to-end pipeline tests spanning every crate: benchmark → fit →
//! validate → simulate → explore, on small grids so the whole thing runs
//! in seconds.

use besst::apps::lulesh::{self, LuleshConfig};
use besst::core::beo::ArchBeo;
use besst::core::sim::{simulate, SimConfig};
use besst::experiments::calibration::{
    calibrate, measured_means, validation_mape, CalibrationConfig, ModelMethod,
};
use besst::fti::FtiConfig;
use besst::machine::presets;
use besst::models::{Interpolation, ModelBundle, SymRegConfig};

fn small_grid() -> Vec<(u32, u32)> {
    vec![(5, 8), (10, 8), (15, 8), (5, 64), (10, 64), (15, 64)]
}

fn quick_cfg(method: ModelMethod) -> CalibrationConfig {
    CalibrationConfig {
        samples_per_point: 6,
        method,
        symreg: SymRegConfig { population: 96, generations: 12, ..Default::default() },
        symreg_restarts: 2,
        ..Default::default()
    }
}

/// The complete Model Development → Co-Design loop: calibrate on the
/// testbed, persist the models to JSON, reload, simulate, and check the
/// prediction against a fresh testbed measurement of the same full run.
#[test]
fn full_workflow_roundtrip() {
    let machine = presets::quartz();
    let fti = FtiConfig::l1_only(10);
    let regions = |epr: u32, ranks: u32| {
        lulesh::instrumented_regions(&LuleshConfig::new(epr, ranks), &fti, &machine, 36)
    };

    // Model Development.
    let cal = calibrate(&machine, regions, &small_grid(), &quick_cfg(ModelMethod::Table(Interpolation::Multilinear)));

    // Persist + reload (the ArchBEO artifact contract).
    let json = cal.bundle.to_json();
    let bundle = ModelBundle::from_json(&json).expect("model bundle parses");

    // Co-Design: full-system simulation with the reloaded models.
    let app = lulesh::appbeo(&LuleshConfig::new(10, 64), &fti, 50);
    let arch = ArchBeo::new(machine.clone(), 36, bundle);
    arch.check_covers(&app).expect("all kernels bound");
    let sim = simulate(&app, &arch, &SimConfig { seed: 5, monte_carlo: true, ..Default::default() })
        .expect("covered");
    assert_eq!(sim.step_completions.len(), 50);
    assert_eq!(sim.n_checkpoints(), 5);

    // Ground truth: replay the same run on the testbed.
    let tb = besst::machine::Testbed::new(&machine);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(77);
    let rs = regions(10, 64);
    let ts = rs.iter().find(|r| r.kernel == lulesh::kernels::TIMESTEP).expect("timestep region");
    let ck = rs.iter().find(|r| r.kernel == lulesh::kernels::CKPT_L1).expect("ckpt region");
    let mut measured = 0.0;
    for step in 1..=50u32 {
        measured += ts.measure(&tb, &mut rng);
        if step % 10 == 0 {
            measured += ck.measure(&tb, &mut rng);
        }
    }
    let err = (sim.total_seconds - measured).abs() / measured;
    assert!(
        err < 0.6,
        "simulated {:.4}s vs measured {:.4}s ({:.0}% off)",
        sim.total_seconds,
        measured,
        100.0 * err
    );
}

/// Calibration quality: every model family validates within its expected
/// band on fresh testbed draws.
#[test]
fn all_model_families_validate() {
    let machine = presets::quartz();
    let fti = FtiConfig::l1_l2(10);
    let regions = |epr: u32, ranks: u32| {
        lulesh::instrumented_regions(&LuleshConfig::new(epr, ranks), &fti, &machine, 36)
    };
    let grid = small_grid();
    let measured = measured_means(&machine, regions, &grid, 5, 1234);
    for (method, band) in [
        (ModelMethod::Table(Interpolation::Multilinear), 45.0),
        (ModelMethod::PowerLaw, 60.0),
        (ModelMethod::SymReg, 60.0),
    ] {
        let cal = calibrate(&machine, regions, &grid, &quick_cfg(method));
        for kernel in [lulesh::kernels::TIMESTEP, lulesh::kernels::CKPT_L1, lulesh::kernels::CKPT_L2] {
            let v = validation_mape(&cal, kernel, &measured[kernel]);
            assert!(
                v < band,
                "{method:?} on {kernel}: validation MAPE {v:.1}% above band {band}%"
            );
        }
    }
}

/// Scenario ordering must hold end-to-end through the real pipeline:
/// No FT < L1 < L1 & L2 in total runtime, at every grid point tried.
#[test]
fn scenario_ordering_end_to_end() {
    let machine = presets::quartz();
    let all = FtiConfig::l1_l2(10);
    let regions = |epr: u32, ranks: u32| {
        lulesh::instrumented_regions(&LuleshConfig::new(epr, ranks), &all, &machine, 36)
    };
    let cal = calibrate(
        &machine,
        regions,
        &small_grid(),
        &quick_cfg(ModelMethod::Table(Interpolation::Multilinear)),
    );
    let arch = ArchBeo::new(machine, 36, cal.bundle);
    for &(epr, ranks) in &[(10u32, 8u32), (15, 64)] {
        let cfg = LuleshConfig::new(epr, ranks);
        let run = |fti: &FtiConfig, seed: u64| -> f64 {
            let app = lulesh::appbeo(&cfg, fti, 40);
            simulate(&app, &arch, &SimConfig { seed, monte_carlo: false, ..Default::default() })
                .expect("covered")
                .total_seconds
        };
        let noft = run(&FtiConfig::none(), 1);
        let l1 = run(&FtiConfig::l1_only(10), 2);
        let l12 = run(&FtiConfig::l1_l2(10), 3);
        assert!(noft < l1, "({epr},{ranks}): {noft} < {l1}");
        assert!(l1 < l12, "({epr},{ranks}): {l1} < {l12}");
    }
}

/// Algorithmic DSE: swapping a kernel's model (the paper's FFT example,
/// §III-B) changes exactly that kernel's contribution.
#[test]
fn algorithmic_dse_model_interchange() {
    use besst::models::{PerfModel, SampleTable};
    let machine = presets::quartz();
    let mk = |secs: f64| -> PerfModel {
        let mut t = SampleTable::new(&["epr", "ranks"], Interpolation::Nearest);
        t.insert(&[10.0, 8.0], secs);
        PerfModel::Table(t)
    };
    let mut bundle = ModelBundle::new();
    bundle.insert(lulesh::kernels::TIMESTEP, mk(0.01));
    let arch_slow = ArchBeo::new(machine, 36, bundle);
    // "Algorithm B" is 2× faster.
    let arch_fast = arch_slow.clone().with_model(lulesh::kernels::TIMESTEP, mk(0.005));

    let app = lulesh::appbeo(&LuleshConfig::new(10, 8), &FtiConfig::none(), 30);
    let cfg = SimConfig { monte_carlo: false, ..Default::default() };
    let slow = simulate(&app, &arch_slow, &cfg).expect("covered").total_seconds;
    let fast = simulate(&app, &arch_fast, &cfg).expect("covered").total_seconds;
    assert!((slow / fast - 2.0).abs() < 0.01, "swap halves runtime: {slow} vs {fast}");
}

/// Cross-machine portability: the same AppBEO simulates on Quartz,
/// Vulcan, and the notional dragonfly with per-machine calibrations.
#[test]
fn plug_and_play_across_machines() {
    for machine in [presets::quartz(), presets::vulcan(), presets::notional_dragonfly()] {
        let fti = FtiConfig::none();
        let regions = |epr: u32, ranks: u32| {
            lulesh::instrumented_regions(&LuleshConfig::new(epr, ranks), &fti, &machine, 16)
        };
        let cal = calibrate(
            &machine,
            regions,
            &[(5, 8), (10, 8)],
            &quick_cfg(ModelMethod::Table(Interpolation::Multilinear)),
        );
        let app = lulesh::appbeo(&LuleshConfig::new(10, 8), &fti, 10);
        let arch = ArchBeo::new(machine.clone(), 16, cal.bundle);
        let sim = simulate(&app, &arch, &SimConfig::default()).expect("covered");
        assert!(sim.total_seconds > 0.0, "{}", machine.name);
        assert_eq!(sim.step_completions.len(), 10, "{}", machine.name);
    }
}
