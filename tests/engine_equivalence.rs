//! The conservative-parallel DES engine must be *indistinguishable* from
//! the sequential reference: every component sees the same events in the
//! same order with the same timestamps. Property-tested over randomized
//! workloads and partitionings.

use besst::des::prelude::*;
use parking_lot::Mutex;
use proptest::prelude::*;
use std::sync::Arc;

/// A component that records its delivery trace and forwards payloads
/// around a random graph.
struct Recorder {
    /// (time ns, payload) per delivery, shared so the test can read it
    /// after the engine consumed the component.
    trace: Arc<Mutex<Vec<(u64, u64)>>>,
    /// Forward to output port `p % fanout` with payload-1 until zero.
    fanout: u16,
}

impl Component<u64> for Recorder {
    fn on_event(&mut self, ev: Event<u64>, ctx: &mut Ctx<'_, u64>) {
        self.trace.lock().push((ev.time.as_nanos(), ev.payload));
        if ev.payload > 0 {
            let port = PortId((ev.payload % self.fanout as u64) as u16);
            ctx.send(port, ev.payload - 1);
        }
    }
}

type Traces = Vec<Arc<Mutex<Vec<(u64, u64)>>>>;

/// Build a random-but-deterministic strongly-connected component graph:
/// `n` components, each with `fanout` output ports wired pseudo-randomly.
fn build(n: usize, fanout: u16, latency_ns: u64, graph_seed: u64) -> (EngineBuilder<u64>, Traces) {
    let mut b = EngineBuilder::new();
    let mut traces = Vec::new();
    let ids: Vec<ComponentId> = (0..n)
        .map(|_| {
            let t = Arc::new(Mutex::new(Vec::new()));
            traces.push(Arc::clone(&t));
            b.add_component(Box::new(Recorder { trace: t, fanout }))
        })
        .collect();
    // Deterministic pseudo-random wiring (xorshift).
    let mut state = graph_seed | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for (i, &src) in ids.iter().enumerate() {
        for p in 0..fanout {
            // Ring edge for port 0 guarantees connectivity; others random.
            let dst = if p == 0 { ids[(i + 1) % n] } else { ids[(next() as usize) % n] };
            b.connect(src, PortId(p), dst, PortId(0), SimTime::from_nanos(latency_ns));
        }
    }
    (b, traces)
}

fn run_sequential(n: usize, fanout: u16, latency: u64, seed: u64, hops: u64) -> Vec<Vec<(u64, u64)>> {
    let (b, traces) = build(n, fanout, latency, seed);
    let mut e = b.build();
    e.inject(SimTime::ZERO, ComponentId(0), PortId(0), hops, 0);
    assert_eq!(e.run_to_completion(), RunOutcome::Drained);
    traces.iter().map(|t| t.lock().clone()).collect()
}

fn run_parallel(
    n: usize,
    fanout: u16,
    latency: u64,
    seed: u64,
    hops: u64,
    workers: usize,
) -> Vec<Vec<(u64, u64)>> {
    let (b, traces) = build(n, fanout, latency, seed);
    let mut p = ParallelEngine::new(b, Partitioning::RoundRobin(workers));
    p.inject(SimTime::ZERO, ComponentId(0), PortId(0), hops, 0);
    let report = p.run();
    assert_eq!(report.outcome, RunOutcome::Drained);
    traces.iter().map(|t| t.lock().clone()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Per-component traces are identical across engines, for any graph,
    /// fanout, and worker count.
    #[test]
    fn parallel_equals_sequential(
        n in 2usize..12,
        fanout in 1u16..4,
        latency in 1u64..1000,
        seed in any::<u64>(),
        hops in 1u64..300,
        workers in 1usize..5,
    ) {
        let seq = run_sequential(n, fanout, latency, seed, hops);
        let par = run_parallel(n, fanout, latency, seed, hops, workers);
        prop_assert_eq!(seq, par);
    }
}

#[test]
fn large_graph_trace_equivalence() {
    let seq = run_sequential(64, 3, 50, 0xABCD, 5000);
    for workers in [2usize, 4, 8] {
        let par = run_parallel(64, 3, 50, 0xABCD, 5000, workers);
        assert_eq!(seq, par, "workers = {workers}");
    }
    // Sanity: the workload actually delivered the expected number of
    // events overall.
    let total: usize = seq.iter().map(|t| t.len()).sum();
    assert_eq!(total, 5001);
}

/// Spot-check that the DST harness is reachable and green through the
/// `besst` facade — the full 64-seed blocks live in
/// `crates/des/tests/dst_substrate.rs`.
#[test]
fn dst_spot_check_via_facade() {
    use besst::des::buggify::FaultPreset;
    let r = besst::des::dst::run_dst(0xFACADE, FaultPreset::Moderate);
    assert!(r.delivered > 0);
    assert_eq!(r.partitionings_checked, 6);
}

#[test]
fn be_simulation_equivalent_across_engines_and_partitionings() {
    use besst::core::sim::{simulate, EngineKind, SimConfig};
    let app = besst::apps::lulesh::appbeo(
        &besst::apps::LuleshConfig::new(5, 64),
        &besst::fti::FtiConfig::none(),
        20,
    );
    let mut bundle = besst::models::ModelBundle::new();
    let mut t = besst::models::SampleTable::new(&["epr", "ranks"], besst::models::Interpolation::Nearest);
    t.insert(&[5.0, 64.0], 0.01);
    bundle.insert(besst::apps::lulesh::kernels::TIMESTEP, besst::models::PerfModel::Table(t));
    let arch = besst::core::beo::ArchBeo::new(besst::machine::presets::quartz(), 36, bundle);
    let seq = simulate(&app, &arch, &SimConfig { seed: 3, monte_carlo: true, ..Default::default() })
        .expect("covered");
    for workers in [2usize, 3, 7] {
        let par = simulate(
            &app,
            &arch,
            &SimConfig {
                seed: 3,
                monte_carlo: true,
                engine: EngineKind::Parallel(workers),
                ..Default::default()
            },
        )
        .expect("covered");
        assert_eq!(seq.total_seconds, par.total_seconds, "workers = {workers}");
        assert_eq!(seq.step_completions, par.step_completions);
    }
}
