//! Validation of the fault injector against the analytical models it
//! should agree with: Daly's expected-runtime formula, the Young/Daly
//! interval optimum, and the reliability-aware speedup's qualitative
//! behaviour.

use besst::analytic::{CrParams, ParallelWorkload, ReliabilityParams};
use besst::core::faults::{expected_makespan, FaultProcess, Timeline};
use besst::fti::{CkptLevel, FtiConfig, GroupLayout};

fn flat_timeline(steps: usize, step_s: f64, period: usize, ckpt_s: f64, restart_s: f64) -> Timeline {
    Timeline {
        step_durations: vec![step_s; steps],
        checkpoints: (1..=steps)
            .filter(|s| period > 0 && s % period == 0)
            .map(|s| (s, CkptLevel::L1, ckpt_s))
            .collect(),
        restart_costs: vec![(CkptLevel::L1, restart_s)],
    }
}

fn layout() -> GroupLayout {
    GroupLayout::new(&FtiConfig::l1_only(10), 64)
}

/// The injector's expected makespan tracks Daly's closed form across a
/// sweep of MTBFs and checkpoint periods (within 25 % — Daly assumes
/// memoryless re-failure during recovery; the simulation checkpoints at
/// discrete step boundaries).
#[test]
fn injector_matches_daly_across_regimes() {
    let steps = 600usize;
    let step_s = 1.0;
    let restart = 8.0;
    let lay = layout();
    for &period in &[15usize, 30, 60] {
        for &mtbf in &[400.0f64, 1200.0, 4800.0] {
            let ckpt = 4.0;
            let tl = flat_timeline(steps, step_s, period, ckpt, restart);
            let process = FaultProcess::new(mtbf * 64.0, 64, 0.0);
            let sim = expected_makespan(&tl, &process, Some(&lay), 99, 60).unwrap();
            let cr = CrParams::new(ckpt, restart, mtbf);
            let daly = cr.expected_runtime(steps as f64 * step_s, period as f64 * step_s);
            let ratio = sim / daly;
            assert!(
                (0.75..1.25).contains(&ratio),
                "period {period}, MTBF {mtbf}: sim {sim:.1} vs Daly {daly:.1} (ratio {ratio:.3})"
            );
        }
    }
}

/// Simulated makespan over checkpoint periods is U-shaped with its
/// minimum near the Young interval.
#[test]
fn simulated_period_optimum_brackets_young() {
    let steps = 800usize;
    let step_s = 1.0;
    let ckpt = 3.0;
    let restart = 6.0;
    let mtbf = 300.0;
    let lay = layout();
    let process = FaultProcess::new(mtbf * 64.0, 64, 0.0);

    let young = CrParams::new(ckpt, restart, mtbf).young_interval(); // ≈ 42 s
    let young_steps = (young / step_s).round() as usize;

    let makespan = |period: usize| -> f64 {
        let tl = flat_timeline(steps, step_s, period, ckpt, restart);
        expected_makespan(&tl, &process, Some(&lay), 7, 80).unwrap()
    };
    let near = makespan(young_steps);
    let too_often = makespan((young_steps / 6).max(1));
    let too_rare = makespan(young_steps * 6);
    assert!(near < too_often, "near-Young {near} vs over-checkpointing {too_often}");
    assert!(near < too_rare, "near-Young {near} vs under-checkpointing {too_rare}");
}

/// Data-loss-aware recovery: with multi-level checkpoints, the injector
/// restores from the surviving level — L1&L2 beats L1-only when faults
/// destroy node data.
#[test]
fn multilevel_recovery_beats_single_level_under_data_loss() {
    let steps = 400usize;
    let period = 20usize;
    let l1_only = flat_timeline(steps, 1.0, period, 2.0, 4.0);
    // Same schedule with an additional L2 checkpoint (costing more) at
    // the same steps.
    let mut both = l1_only.clone();
    for s in (period..=steps).step_by(period) {
        both.checkpoints.push((s, CkptLevel::L2, 3.0));
    }
    both.restart_costs.push((CkptLevel::L2, 6.0));

    // Every fault destroys a node's data: L1-only restarts from scratch,
    // L1&L2 recovers from the partner copy.
    let process = FaultProcess::new(430.0 * 64.0, 64, 1.0);
    let lay = layout();
    let t_l1 = expected_makespan(&l1_only, &process, Some(&lay), 21, 40).unwrap();
    let t_both = expected_makespan(&both, &process, Some(&lay), 21, 40).unwrap();
    assert!(
        t_both < t_l1,
        "L2's survivability must beat L1's lower overhead under data loss: {t_both} vs {t_l1}"
    );
}

/// The reliability-aware speedup model and the injector agree on the
/// qualitative claim: with faults and C/R, doubling nodes beyond the
/// optimum stops helping.
#[test]
fn more_nodes_stop_helping_under_faults() {
    // Strong scaling: total work fixed; per-step time ∝ 1/nodes.
    let total_work = 2.0e6; // seconds of sequential work: faults must bite at scale
    let steps = 600usize;
    let node_mtbf = 40_000.0;
    let lay_for = |ranks: u32| GroupLayout::new(&FtiConfig::l1_only(10), ranks);

    let makespan_at = |nodes: u32| -> f64 {
        let step_s = total_work / steps as f64 / nodes as f64;
        let ckpt = 5.0; // scale-independent checkpoint cost
        let period_steps =
            ((CrParams::new(ckpt, 2.0 * ckpt, node_mtbf / nodes as f64).young_interval() / step_s)
                .round() as usize)
                .max(1);
        let tl = flat_timeline(steps, step_s, period_steps, ckpt, 2.0 * ckpt);
        let process = FaultProcess::new(node_mtbf, nodes, 0.0);
        expected_makespan(&tl, &process, Some(&lay_for(64)), 3, 40).unwrap()
    };

    let t64 = makespan_at(64);
    let t512 = makespan_at(512);
    let t8192 = makespan_at(8192);
    // Parallelism helps at first...
    assert!(t512 < t64, "512 nodes {t512} should beat 64 nodes {t64}");
    // ...but the speedup per node collapses at scale (reliability-aware
    // efficiency decline — Zheng/Cavelan's headline).
    let eff_512 = (t64 / t512) / (512.0 / 64.0);
    let eff_8192 = (t64 / t8192) / (8192.0 / 64.0);
    assert!(
        eff_8192 < eff_512 * 0.8,
        "efficiency must decline: {eff_8192} vs {eff_512}"
    );

    // And the analytic model draws the same curve.
    let w = ParallelWorkload::new(1.0);
    let r = ReliabilityParams::new(node_mtbf, 5.0, 10.0);
    let s512 = besst::analytic::strong_speedup(&w, &r, total_work, 512);
    let s8192 = besst::analytic::strong_speedup(&w, &r, total_work, 8192);
    assert!(s512 / 512.0 > s8192 / 8192.0, "analytic efficiency declines too");
}
