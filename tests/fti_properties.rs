//! Property tests for the FTI substrate: the Reed–Solomon codec, the
//! recovery-semantics lattice, and the end-to-end path from an executing
//! application's checkpoint payload through the real erasure code.

use besst::apps::lulesh::Domain;
use besst::fti::{
    survives, CkptLevel, EncodedGroup, FailureScenario, FtiConfig, GroupLayout, ReedSolomon,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// RS round-trips any data under any erasure pattern within the
    /// parity budget.
    #[test]
    fn rs_roundtrip_any_pattern(
        k in 1usize..8,
        m in 1usize..5,
        shard_len in 1usize..200,
        data_seed in any::<u64>(),
        loss_mask in any::<u16>(),
    ) {
        let rs = ReedSolomon::new(k, m);
        let mut state = data_seed | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state as u8
        };
        let data: Vec<Vec<u8>> =
            (0..k).map(|_| (0..shard_len).map(|_| next()).collect()).collect();
        let parity = rs.encode(&data).expect("encode");
        let n = k + m;
        // Restrict the mask to at most m losses.
        let mut shards: Vec<Option<Vec<u8>>> =
            data.iter().cloned().map(Some).chain(parity.into_iter().map(Some)).collect();
        let mut losses = 0;
        for (i, shard) in shards.iter_mut().enumerate().take(n) {
            if loss_mask & (1 << i) != 0 && losses < m {
                *shard = None;
                losses += 1;
            }
        }
        let rec = rs.reconstruct(&shards).expect("within budget");
        prop_assert_eq!(rec, data);
    }

    /// Losing more than `parity` shards must fail loudly, never return
    /// wrong data.
    #[test]
    fn rs_overbudget_is_error(
        k in 1usize..6,
        m in 1usize..4,
        shard_len in 1usize..64,
    ) {
        let rs = ReedSolomon::new(k, m);
        let data: Vec<Vec<u8>> = (0..k).map(|i| vec![i as u8; shard_len]).collect();
        let parity = rs.encode(&data).expect("encode");
        let mut shards: Vec<Option<Vec<u8>>> =
            data.iter().cloned().map(Some).chain(parity.into_iter().map(Some)).collect();
        for shard in shards.iter_mut().take(m + 1) {
            *shard = None;
        }
        if k > 1 {
            prop_assert!(rs.reconstruct(&shards).is_err());
        }
    }

    /// Recovery-semantics lattice: for single-node losses, higher levels
    /// never do worse than lower ones; L4 survives everything; L1
    /// survives only the empty scenario.
    #[test]
    fn recovery_lattice(
        groups in 1u32..6,
        group_size in 2u32..7,
        lost in proptest::collection::btree_set(0u32..36, 0..6),
    ) {
        let cfg = FtiConfig {
            group_size,
            node_size: 2,
            l2_copies: 1,
            schedules: vec![],
        };
        let ranks = groups * group_size * 2;
        let layout = GroupLayout::new(&cfg, ranks);
        let lost: Vec<u32> = lost.into_iter().filter(|&n| n < layout.n_nodes()).collect();
        let sc = FailureScenario::of(lost.clone());

        let l1 = survives(CkptLevel::L1, &layout, &sc).unwrap();
        let l2 = survives(CkptLevel::L2, &layout, &sc).unwrap();
        let l3 = survives(CkptLevel::L3, &layout, &sc).unwrap();
        let l4 = survives(CkptLevel::L4, &layout, &sc).unwrap();

        prop_assert_eq!(l1, lost.is_empty());
        prop_assert!(l4, "L4 always survives");
        // L1 ⊆ L2, L1 ⊆ L3, everything ⊆ L4.
        prop_assert!(!l1 || l2, "L2 dominates L1");
        prop_assert!(!l1 || l3, "L3 dominates L1");
        // Single losses are always survivable above L1.
        if lost.len() == 1 {
            prop_assert!(l2, "one loss, one partner copy");
            if group_size >= 2 {
                prop_assert!(l3, "one loss within RS tolerance");
            }
        }
    }

    /// The L3 predicate agrees with the actual RS codec for arbitrary
    /// group sizes and loss patterns.
    #[test]
    fn l3_predicate_matches_codec(
        group_size in 2usize..7,
        loss_mask in any::<u8>(),
        payload_len in 1usize..120,
    ) {
        let files: Vec<Vec<u8>> = (0..group_size)
            .map(|i| (0..payload_len).map(|j| (i * 131 + j * 7) as u8).collect())
            .collect();
        let mut g = EncodedGroup::encode(&files);
        let cfg = FtiConfig {
            group_size: group_size as u32,
            node_size: 2,
            l2_copies: 1,
            schedules: vec![],
        };
        let layout = GroupLayout::new(&cfg, group_size as u32 * 2);
        let mut lost = Vec::new();
        for m in 0..group_size {
            if loss_mask & (1 << m) != 0 {
                g.fail_member(m);
                lost.push(m as u32);
            }
        }
        let predicate = survives(CkptLevel::L3, &layout, &FailureScenario::of(lost)).unwrap();
        let recovered = g.recover_all();
        prop_assert_eq!(predicate, recovered.is_some());
        if let Some(rec) = recovered {
            prop_assert_eq!(rec, files);
        }
    }
}

/// End-to-end: an executing LULESH domain's checkpoint payload goes
/// through the real codec, members die, the payload is reconstructed,
/// and the restored domain continues identically.
#[test]
fn lulesh_checkpoint_through_reed_solomon() {
    let group_size = 4;
    let mut domains: Vec<Domain> = (0..group_size).map(|_| Domain::new(5)).collect();
    // Advance each domain differently so payloads differ.
    for (i, d) in domains.iter_mut().enumerate() {
        d.run(5 + i as u32);
    }
    let payloads: Vec<Vec<u8>> = domains.iter().map(|d| d.checkpoint_payload()).collect();
    let mut group = EncodedGroup::encode(&payloads);

    // Keep reference copies, advance the originals, then "lose" two
    // members (the L3 tolerance for a group of 4).
    let snapshots = domains.clone();
    for d in &mut domains {
        d.run(10);
    }
    group.fail_member(0);
    group.fail_member(2);

    let recovered = group.recover_all().expect("within tolerance");
    for (i, payload) in recovered.iter().enumerate() {
        domains[i].restore(payload);
        assert_eq!(domains[i].energy, snapshots[i].energy, "member {i}");
        assert_eq!(domains[i].pressure, snapshots[i].pressure, "member {i}");
    }

    // Restored domains evolve identically to never-failed copies.
    let mut reference = snapshots[1].clone();
    reference.run(7);
    domains[1].run(7);
    assert_eq!(reference.energy, domains[1].energy);
}

/// A third member loss (beyond tolerance) must be detected, not silently
/// mis-recovered.
#[test]
fn lulesh_checkpoint_loss_beyond_tolerance_detected() {
    let payloads: Vec<Vec<u8>> = (0..4).map(|i| {
        let mut d = Domain::new(4);
        d.run(i + 1);
        d.checkpoint_payload()
    }).collect();
    let mut group = EncodedGroup::encode(&payloads);
    group.fail_member(0);
    group.fail_member(1);
    group.fail_member(3);
    assert!(group.recover_all().is_none());
}
