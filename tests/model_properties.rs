//! Property tests for the performance-model layer: interpolation bounds,
//! metric invariants, expression semantics, and fit determinism.

use besst::models::{
    mape, powerlaw, quantile, r_squared, symreg, Dataset, Expr, Interpolation, PerfModel,
    SampleTable, SymRegConfig,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Multilinear interpolation of a 1-D table stays within the convex
    /// hull of the recorded sample means for in-range queries.
    #[test]
    fn interpolation_stays_in_hull(
        values in proptest::collection::vec(0.001f64..1000.0, 2..8),
        query_t in 0.0f64..1.0,
    ) {
        let mut table = SampleTable::new(&["x"], Interpolation::Multilinear);
        for (i, &v) in values.iter().enumerate() {
            table.insert(&[i as f64], v);
        }
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let x = query_t * (values.len() - 1) as f64;
        let p = table.predict(&[x]);
        prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{p} outside [{lo}, {hi}]");
    }

    /// Out-of-hull queries clamp to the edge values.
    #[test]
    fn interpolation_clamps_outside_hull(
        a in 0.1f64..10.0,
        b in 0.1f64..10.0,
        beyond in 1.0f64..100.0,
    ) {
        let mut table = SampleTable::new(&["x"], Interpolation::Multilinear);
        table.insert(&[0.0], a);
        table.insert(&[1.0], b);
        prop_assert!((table.predict(&[-beyond]) - a).abs() < 1e-12);
        prop_assert!((table.predict(&[1.0 + beyond]) - b).abs() < 1e-12);
    }

    /// MAPE is zero iff predictions equal actuals; scale-invariant; and
    /// permutation-invariant.
    #[test]
    fn mape_invariants(
        actual in proptest::collection::vec(0.01f64..1e6, 1..20),
        scale in 0.001f64..1000.0,
        noise in proptest::collection::vec(0.5f64..2.0, 1..20),
    ) {
        prop_assert!(mape(&actual, &actual).abs() < 1e-12);
        let pred: Vec<f64> = actual.iter().zip(noise.iter().cycle()).map(|(a, n)| a * n).collect();
        let m1 = mape(&pred, &actual);
        // Scale both sides: MAPE unchanged.
        let sa: Vec<f64> = actual.iter().map(|v| v * scale).collect();
        let sp: Vec<f64> = pred.iter().map(|v| v * scale).collect();
        let m2 = mape(&sp, &sa);
        prop_assert!((m1 - m2).abs() < 1e-6 * m1.max(1.0), "{m1} vs {m2}");
        prop_assert!(m1 >= 0.0);
    }

    /// Quantiles are monotone in q and bounded by min/max.
    #[test]
    fn quantile_monotone(
        samples in proptest::collection::vec(-1e6f64..1e6, 1..50),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = (q1.min(q2), q1.max(q2));
        let v1 = quantile(&samples, lo);
        let v2 = quantile(&samples, hi);
        prop_assert!(v1 <= v2 + 1e-9);
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v1 >= min - 1e-9 && v2 <= max + 1e-9);
    }

    /// Expression simplification preserves evaluation on random trees and
    /// never grows them.
    #[test]
    fn simplify_sound(seed in any::<u64>(), x0 in -100.0f64..100.0, x1 in -100.0f64..100.0) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let e = Expr::random(&mut rng, 2, 6, (-8.0, 8.0));
        let s = e.clone().simplify();
        let a = e.eval(&[x0, x1]);
        let b = s.eval(&[x0, x1]);
        prop_assert!(
            (a - b).abs() <= 1e-9 * a.abs().max(1.0) || (a.is_nan() && b.is_nan()),
            "{e} -> {s}: {a} vs {b}"
        );
        prop_assert!(s.size() <= e.size());
    }

    /// Power-law fitting recovers positive monotone trends: predictions
    /// at larger inputs are >= predictions at smaller inputs when the
    /// data is monotone.
    #[test]
    fn powerlaw_preserves_monotone_trends(
        c in 0.001f64..10.0,
        a in 0.2f64..2.5,
    ) {
        let xs: Vec<Vec<f64>> = (1..=8).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|r| c * r[0].powf(a)).collect();
        let law = powerlaw::fit(&xs, &ys);
        let mut prev = 0.0;
        for i in 1..=12 {
            let p = law.eval(&[i as f64]);
            prop_assert!(p >= prev - 1e-9, "non-monotone at {i}: {p} < {prev}");
            prev = p;
        }
    }
}

/// Regression-model Monte-Carlo draws have the residual spread the
/// training data showed: empirical CV of draws ≈ calibrated sigma.
#[test]
fn regression_sampling_matches_residual_spread() {
    use rand::{rngs::StdRng, SeedableRng};
    let x: Vec<Vec<f64>> = (1..=40).map(|i| vec![i as f64]).collect();
    // 20% multiplicative wobble around 2x.
    let y: Vec<f64> = x
        .iter()
        .enumerate()
        .map(|(i, r)| 2.0 * r[0] * (1.0 + 0.2 * ((i as f64 * 1.7).sin())))
        .collect();
    let expr = Expr::Binary(
        besst::models::expr::BinOp::Mul,
        Box::new(Expr::Const(2.0)),
        Box::new(Expr::Var(0)),
    );
    let model = PerfModel::from_expr(expr, &x, &y);
    let sigma = model.residual_sigma();
    assert!(sigma > 0.05 && sigma < 0.3, "calibrated sigma {sigma}");
    let mut rng = StdRng::seed_from_u64(5);
    let draws: Vec<f64> = (0..30_000).map(|_| model.sample(&[10.0], &mut rng)).collect();
    let mean = draws.iter().sum::<f64>() / draws.len() as f64;
    let var = draws.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / draws.len() as f64;
    let cv = var.sqrt() / mean;
    assert!(
        (cv / sigma - 1.0).abs() < 0.15,
        "draw CV {cv} should track sigma {sigma}"
    );
}

/// Symbolic regression is bit-deterministic per seed even with rayon
/// parallel fitness evaluation.
#[test]
fn symreg_parallel_determinism() {
    let x: Vec<Vec<f64>> = (1..=12).map(|i| vec![i as f64, (i * i) as f64]).collect();
    let y: Vec<f64> = x.iter().map(|r| 0.5 * r[0] + 0.01 * r[1]).collect();
    let data = Dataset::new(x, y);
    let cfg = SymRegConfig { population: 64, generations: 10, seed: 99, ..Default::default() };
    let results: Vec<_> = (0..3).map(|_| symreg::fit(&data, None, &cfg)).collect();
    assert_eq!(results[0].expr, results[1].expr);
    assert_eq!(results[1].expr, results[2].expr);
    assert_eq!(results[0].train_mape, results[2].train_mape);
}

/// R² of a reasonable fit beats R² of the mean predictor, which is 0.
#[test]
fn r_squared_ranks_models() {
    let actual: Vec<f64> = (1..=20).map(|i| i as f64).collect();
    let good: Vec<f64> = actual.iter().map(|a| a * 1.05).collect();
    let mean = vec![10.5; 20];
    assert!(r_squared(&good, &actual) > 0.9);
    assert!(r_squared(&mean, &actual).abs() < 1e-9);
}

/// Model bundles survive JSON round-trips with identical predictions —
/// the Model Development artifact contract.
#[test]
fn bundle_persistence_preserves_predictions() {
    use besst::models::ModelBundle;
    let x: Vec<Vec<f64>> = (1..=10).map(|i| vec![i as f64]).collect();
    let y: Vec<f64> = x.iter().map(|r| 3.0 + r[0].powf(1.7)).collect();
    let law = powerlaw::fit(&x, &y);
    let mut bundle = ModelBundle::new();
    bundle.insert("kernel", PerfModel::from_power_law(law, &x, &y));
    let mut table = SampleTable::new(&["x"], Interpolation::Multilinear);
    table.insert_all(&[1.0], &[0.5, 0.6]);
    table.insert_all(&[2.0], &[1.0, 1.1]);
    bundle.insert("table_kernel", PerfModel::Table(table));

    let json = bundle.to_json();
    let back = ModelBundle::from_json(&json).expect("parse");
    for name in ["kernel", "table_kernel"] {
        for q in [1.0, 1.5, 2.0, 5.0] {
            let a = bundle.get(name).unwrap().predict(&[q]);
            let b = back.get(name).unwrap().predict(&[q]);
            assert_eq!(a, b, "{name} at {q}");
        }
    }
}
