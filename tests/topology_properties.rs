//! Property tests for the interconnect substrate: metric axioms on every
//! topology family, closed-form vs exhaustive agreement, and cost-model
//! monotonicity.

use besst::topology::cost::CostModel;
use besst::topology::dragonfly::Dragonfly;
use besst::topology::fattree::FatTree;
use besst::topology::torus::Torus;
use besst::topology::{NodeId, Topology};
use proptest::prelude::*;

fn check_metric_axioms(t: &dyn Topology) {
    let n = t.n_nodes().min(24); // keep the O(n³) triangle check bounded
    let diam = t.diameter();
    for a in 0..n {
        assert_eq!(t.hops(NodeId(a), NodeId(a)), 0, "identity");
        for b in 0..n {
            let ab = t.hops(NodeId(a), NodeId(b));
            assert_eq!(ab, t.hops(NodeId(b), NodeId(a)), "symmetry");
            assert!(ab <= diam, "diameter bound: {ab} > {diam}");
            for c in 0..n {
                assert!(
                    t.hops(NodeId(a), NodeId(c)) <= ab + t.hops(NodeId(b), NodeId(c)) + 2,
                    "relaxed triangle inequality (±2 for up/down detours)"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn fattree_metric_axioms(leaves in 1usize..6, per in 1usize..6) {
        let t = FatTree::new(leaves, per, 0.5);
        check_metric_axioms(&t);
        // Closed-form mean equals exhaustive mean (recomputed here).
        let n = t.n_nodes();
        if n >= 2 {
            let mut total = 0u64;
            for a in 0..n {
                for b in 0..n {
                    if a != b {
                        total += t.hops(NodeId(a), NodeId(b)) as u64;
                    }
                }
            }
            let exhaustive = total as f64 / (n * (n - 1)) as f64;
            prop_assert!((t.mean_hops() - exhaustive).abs() < 1e-9);
        }
    }

    #[test]
    fn torus_metric_axioms(dims in proptest::collection::vec(1usize..5, 1..4)) {
        let t = Torus::new(&dims);
        check_metric_axioms(&t);
        // Torus is vertex-transitive: the hop histogram from any node is
        // the same; spot-check two sources.
        let n = t.n_nodes();
        if n >= 2 {
            let hist = |src: usize| -> Vec<u32> {
                let mut h: Vec<u32> = (0..n).map(|b| t.hops(NodeId(src), NodeId(b))).collect();
                h.sort_unstable();
                h
            };
            prop_assert_eq!(hist(0), hist(n / 2));
        }
    }

    #[test]
    fn dragonfly_metric_axioms(g in 1usize..5, r in 1usize..5, p in 1usize..4) {
        let t = Dragonfly::new(g, r, p);
        check_metric_axioms(&t);
    }

    #[test]
    fn cost_model_monotonicity(
        bytes_a in 0u64..1_000_000,
        extra in 1u64..1_000_000,
        hops in 0u32..8,
    ) {
        let m = CostModel::omni_path();
        // More bytes never costs less; more hops never costs less.
        prop_assert!(m.pt2pt(bytes_a + extra, hops) >= m.pt2pt(bytes_a, hops));
        prop_assert!(m.pt2pt(bytes_a, hops + 1) >= m.pt2pt(bytes_a, hops));
        // Sharing bandwidth never speeds things up.
        prop_assert!(m.pt2pt_shared(bytes_a, hops, 0.5) >= m.pt2pt(bytes_a, hops) - 1e-15);
    }

    #[test]
    fn collectives_scale_with_participants(p in 1usize..2000, bytes in 1u64..1_000_000) {
        use besst::topology::collectives::CollectiveModel;
        let m = CollectiveModel::new(CostModel::omni_path(), 4.0, 0.5);
        prop_assert!(m.barrier(p * 2) >= m.barrier(p));
        prop_assert!(m.allreduce(p * 2, bytes) >= m.allreduce(p, bytes) - 1e-15);
        prop_assert!(m.allgather(p + 1, bytes) >= m.allgather(p, bytes));
        // Collectives on one rank are free.
        prop_assert!(m.allreduce(1, bytes) == 0.0);
    }
}

/// The Quartz fat-tree specifically: 93 leaves × 32 nodes covers the
/// 2,988-node machine with 4-hop diameter and nearly all traffic crossing
/// the core.
#[test]
fn quartz_fabric_shape() {
    let t = FatTree::fitting(2988, 32, 0.5);
    assert!(t.n_nodes() >= 2988);
    assert_eq!(t.diameter(), 4);
    assert!(t.core_traffic_fraction() > 0.98);
    assert!((t.mean_hops() - 4.0).abs() < 0.05, "mean hops ≈ 4 at this scale");
}

/// The Vulcan torus: 24,576 nodes on a 5-D shape with the documented
/// wraparound distances.
#[test]
fn vulcan_fabric_shape() {
    let t = Torus::new(&[8, 8, 8, 8, 6]);
    assert_eq!(t.n_nodes(), 24_576);
    assert_eq!(t.diameter(), 4 * 4 + 3);
    // Mean hops should be close to the sum of per-dimension means
    // (≈ d/4 each for even extents).
    assert!((t.mean_hops() - (4.0 * 2.0 + 1.5)).abs() < 0.35, "{}", t.mean_hops());
}
