//! `cargo run -p xtask -- bench-json` — the repo's pinned-seed benchmark
//! harness.
//!
//! Runs the same workloads as `crates/bench/benches/scheduler.rs` (deep-
//! queue engine throughput with the arena scheduler vs the `BinaryHeap`
//! reference, online fail-stop + SDC replay, LULESH overlay sweep) plus
//! the scenario server (batch throughput, shed rate, cache hit rate,
//! cold-vs-warm cached-baseline speedup, chaos injection profile) and
//! the shard cluster (queries/sec at 1/2/4 shards, a storm failover run
//! with zero lost or duplicated answers) and the million-component
//! substrate (flat-store torus relay weak scaling from 64k to 1M
//! components with per-component byte footprints, plus full-machine
//! Quartz and Vulcan-core runs) and emits a machine-readable JSON
//! report — `results/BENCH_0011.json` in the tree is a committed run of
//! `BenchParams::full()` in release mode (`results/BENCH_0005/0007/0009`
//! are earlier schema generations).
//!
//! JSON is emitted by hand because serde_json is stubbed in the offline
//! build environments this repo targets (docs/OFFLINE_BUILDS.md). The
//! allocation counts come from the counting `#[global_allocator]`
//! installed by the `xtask` binary; library tests that call [`run`]
//! without that allocator simply read zeros.

use besst_bench::{
    churn_builder, churn_total_events, crash_online_cfg, fattree_substrate_builder,
    inject_churn_backlog, inject_relay_seeds, lulesh_timeline, lulesh_trace, merge_relay_stats,
    relay_total_events, sdc_online_cfg, torus_cores_substrate_builder, torus_substrate_builder,
    FatPayload, RelayModel,
};
use besst_topology::fattree::FatTree;
use besst_topology::torus::Torus;
use besst_core::faults::{expected_makespan, FaultProcess};
use besst_core::run_online;
use besst_core::sim::EngineKind;
use besst_des::prelude::*;
use besst_fti::{FtiConfig, GroupLayout};
use besst_serve::query::ScenarioQuery;
use besst_serve::{json, Chaos, ClusterConfig, ServeConfig, Server};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Heap allocations observed by the counting allocator in `xtask`'s
/// binary. The library itself never installs a `#[global_allocator]`
/// (that would leak into every test harness linking this crate); the
/// binary's allocator increments this counter on each `alloc` call.
pub static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Bytes handed out by the counting allocator (monotone).
pub static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

/// Bytes returned to the counting allocator (monotone).
pub static FREED_BYTES: AtomicU64 = AtomicU64::new(0);

fn allocations_now() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Bytes currently live according to the counting allocator; zero in any
/// process (e.g. a test harness) that did not install it.
pub fn live_bytes() -> u64 {
    ALLOCATED_BYTES.load(Ordering::Relaxed).saturating_sub(FREED_BYTES.load(Ordering::Relaxed))
}

/// Workload sizes for one `bench-json` run.
#[derive(Debug, Clone)]
pub struct BenchParams {
    /// Churn components (deep-queue engine benchmark).
    pub components: usize,
    /// Live event chains per component.
    pub backlog: usize,
    /// Self-reschedules per chain.
    pub hops: u32,
    /// Timed engine iterations per queue implementation.
    pub engine_iters: u32,
    /// LULESH timesteps for the replayed trace.
    pub lulesh_steps: u32,
    /// Online replay replicas per fault mix.
    pub online_replicas: u32,
    /// L1 checkpoint periods swept by the overlay benchmark.
    pub overlay_periods: Vec<u32>,
    /// Overlay injection replicas per sweep cell.
    pub overlay_replicas: u32,
    /// Scenario-server queries in the throughput batch.
    pub serve_queries: usize,
    /// Distinct baseline configurations the serve batch spreads over
    /// (each is computed cold once, then hit warm).
    pub serve_baselines: usize,
    /// Timesteps per serve query (sizes the baseline compute the cache
    /// amortizes).
    pub serve_steps: u32,
    /// Base seed; every stochastic draw in the run derives from it.
    pub seed: u64,
    /// Weak-scaling torus sizes as exponents of 2 (5-D balanced dims);
    /// `[16, 18, 20]` is the committed 64k → 256k → 1M ladder.
    pub weak_scaling_exponents: Vec<u32>,
    /// Relay chains seeded per 16 components (work per component is
    /// constant across the sweep — the weak-scaling contract).
    pub substrate_seeds_per_16: u64,
    /// Hops per relay chain.
    pub substrate_hops: u64,
    /// Quartz fat-tree population for the full-machine run.
    pub quartz_nodes: usize,
    /// Vulcan torus extents for the full-machine per-core run.
    pub vulcan_dims: Vec<usize>,
    /// Cores per Vulcan node (16 on the real machine → 393,216 components).
    pub vulcan_cores: usize,
}

impl BenchParams {
    /// The committed-report configuration (release mode, ~seconds).
    ///
    /// The churn geometry (4096 components × 32 chains = 131 072 resident
    /// events) pins the engine benchmark in the deep-queue regime the
    /// arena scheduler targets: at this population neither queue fits in
    /// L2, so layout — 32-byte heap nodes over a slab vs a `BinaryHeap`
    /// sifting whole ~100-byte events — dominates the profile.
    pub fn full() -> Self {
        BenchParams {
            components: 4096,
            backlog: 32,
            hops: 9,
            engine_iters: 8,
            lulesh_steps: 100,
            online_replicas: 40,
            overlay_periods: vec![10, 20, 40, 80],
            overlay_replicas: 30,
            serve_queries: 512,
            serve_baselines: 16,
            serve_steps: 200,
            seed: 0xBE5C_0007,
            weak_scaling_exponents: vec![16, 18, 20],
            substrate_seeds_per_16: 1,
            substrate_hops: 48,
            quartz_nodes: 2988,
            vulcan_dims: vec![8, 8, 8, 8, 6],
            vulcan_cores: 16,
        }
    }

    /// A miniature run for tests: same code path, milliseconds.
    pub fn miniature() -> Self {
        BenchParams {
            components: 24,
            backlog: 4,
            hops: 8,
            engine_iters: 2,
            lulesh_steps: 12,
            online_replicas: 3,
            overlay_periods: vec![6],
            overlay_replicas: 3,
            serve_queries: 24,
            serve_baselines: 3,
            serve_steps: 40,
            seed: 0xBE5C_0007,
            weak_scaling_exponents: vec![6, 8],
            substrate_seeds_per_16: 1,
            substrate_hops: 12,
            quartz_nodes: 96,
            vulcan_dims: vec![4, 4, 2],
            vulcan_cores: 4,
        }
    }
}

struct EngineMeasurement {
    wall_s: f64,
    events_per_sec: f64,
    peak_queue_depth: usize,
    allocations: u64,
}

fn measure_engine<Q: EventQueue<FatPayload>>(p: &BenchParams) -> EngineMeasurement {
    // One untimed warmup iteration pre-faults the allocator and caches.
    let mut peak = 0usize;
    let mut run_once = || {
        let mut e = churn_builder(p.components).build_with_queue::<Q>();
        inject_churn_backlog(&mut e, p.components, p.backlog, p.hops);
        assert_eq!(e.run_to_completion(), RunOutcome::Drained);
        assert_eq!(e.delivered(), churn_total_events(p.components, p.backlog, p.hops));
        peak = peak.max(e.peak_queue_depth());
    };
    run_once();
    let alloc_before = allocations_now();
    let start = Instant::now();
    for _ in 0..p.engine_iters {
        run_once();
    }
    let wall_s = start.elapsed().as_secs_f64();
    let allocations = allocations_now() - alloc_before;
    let events =
        churn_total_events(p.components, p.backlog, p.hops) * u64::from(p.engine_iters);
    EngineMeasurement {
        wall_s,
        events_per_sec: events as f64 / wall_s.max(1e-12),
        peak_queue_depth: peak,
        allocations,
    }
}

struct SubstrateMeasurement {
    components: usize,
    wall_s: f64,
    events_per_sec: f64,
    delivered: u64,
    bytes_per_component: f64,
    peak_queue_depth: usize,
}

/// Build a flat-store substrate engine, record the live-byte footprint of
/// the built engine (links + states + injected queue), then run it to
/// completion and cross-check delivery conservation and the streaming-stat
/// reduction.
fn measure_substrate<F>(build: F, seeds_per_16: u64, hops: u64) -> SubstrateMeasurement
where
    F: FnOnce() -> EngineBuilder<u64, SoaStore<u64, RelayModel>>,
{
    let live_before = live_bytes();
    let builder = build();
    let components = builder.n_components();
    let mut engine = builder.build();
    let seeds = ((components as u64) * seeds_per_16 / 16).max(1);
    inject_relay_seeds(&mut engine, components, seeds, hops);
    let bytes = live_bytes().saturating_sub(live_before);
    let start = Instant::now();
    assert_eq!(engine.run_to_completion(), RunOutcome::Drained);
    let wall_s = start.elapsed().as_secs_f64();
    let delivered = engine.delivered();
    assert_eq!(delivered, relay_total_events(seeds, hops), "relay conservation violated");
    let peak_queue_depth = engine.peak_queue_depth();
    let store = engine.into_store();
    let (seen, _stat) = merge_relay_stats(store.states());
    assert_eq!(seen, delivered, "per-component streaming counters disagree with the engine");
    SubstrateMeasurement {
        components,
        wall_s,
        events_per_sec: delivered as f64 / wall_s.max(1e-12),
        delivered,
        bytes_per_component: bytes as f64 / components as f64,
        peak_queue_depth,
    }
}

/// The memory regression gate behind `cargo run --release -p xtask --
/// mem-gate`: build the weak-scaling torus substrate at each ladder size
/// and require bytes-per-component flat within `tolerance` (±10% in CI)
/// from the smallest size to the largest. `Err` carries the failure text;
/// the caller turns it into a nonzero exit.
pub fn mem_gate(exponents: &[u32], tolerance: f64) -> Result<String, String> {
    assert!(!exponents.is_empty(), "mem-gate needs at least one size");
    let mut lines = Vec::new();
    let mut lo = f64::INFINITY;
    let mut hi = 0.0f64;
    for &k in exponents {
        let t = Torus::new(&Torus::balanced_pow2_dims(5, k));
        let m = measure_substrate(|| torus_substrate_builder(&t), 1, 8);
        lines.push(format!(
            "mem-gate: 2^{k} = {} components -> {:.1} bytes/component ({} events in {:.3}s)",
            m.components, m.bytes_per_component, m.delivered, m.wall_s
        ));
        lo = lo.min(m.bytes_per_component);
        hi = hi.max(m.bytes_per_component);
    }
    if lo <= 0.0 {
        return Err(
            "mem-gate: counting allocator not installed — run via the xtask binary".to_string()
        );
    }
    let ratio = hi / lo;
    lines.push(format!(
        "mem-gate: flatness {ratio:.4} (max/min bytes per component, tolerance {:.2})",
        1.0 + tolerance
    ));
    let text = lines.join("\n");
    if ratio > 1.0 + tolerance {
        Err(format!("{text}\nmem-gate: FAILED — per-component memory is not flat"))
    } else {
        Ok(text)
    }
}

struct ReplayMeasurement {
    wall_s: f64,
    replays_per_sec: f64,
    fault_events_total: u64,
    allocations: u64,
}

fn measure_replay(
    tl: &besst_core::faults::Timeline,
    cfg: &besst_core::online::OnlineConfig,
    seed: u64,
    replicas: u32,
) -> ReplayMeasurement {
    let alloc_before = allocations_now();
    let start = Instant::now();
    let mut fault_events_total = 0u64;
    for i in 0..replicas {
        let run = run_online(tl, cfg, seed.wrapping_add(u64::from(i)), EngineKind::Sequential)
            .expect("online replay runs"); // lint: allow(panic-path) -- a failed replay is a broken bench; abort loudly
        fault_events_total += run.events.len() as u64;
    }
    let wall_s = start.elapsed().as_secs_f64();
    ReplayMeasurement {
        wall_s,
        replays_per_sec: f64::from(replicas) / wall_s.max(1e-12),
        fault_events_total,
        allocations: allocations_now() - alloc_before,
    }
}

struct ServeMeasurement {
    wall_s: f64,
    queries_per_sec: f64,
    cache_hit_rate: f64,
    shed_rate: f64,
    cold_wall_s: f64,
    warm_wall_s: f64,
    cached_speedup: f64,
    chaos_ok: u64,
    chaos: besst_serve::ChaosStats,
    panics_caught: u64,
}

fn serve_query(p: &BenchParams, baseline: usize, i: usize) -> ScenarioQuery {
    // Spread over `serve_baselines` distinct (steps) configurations; every
    // query keeps its own seed so fingerprints (and overlay draws) differ.
    let steps = p.serve_steps + 10 * baseline as u32;
    let text = format!(
        r#"{{"id":{i},"steps":{steps},"ranks":8,"problem_size":10,"seed":{seed}}}"#,
        seed = p.seed.wrapping_add(i as u64)
    );
    // lint: allow(panic-path) -- the harness builds its own queries; malformed means the bench is broken
    ScenarioQuery::from_value(&json::parse(&text).expect("valid JSON")).expect("valid query")
}

/// The serve and cluster measurements exercise chaos paths that panic
/// on purpose; keep the injected panics out of the report stream.
fn quiet_buggify_panics() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let buggify = payload
                .downcast_ref::<&str>()
                .map(|s| s.contains("buggify:"))
                .or_else(|| payload.downcast_ref::<String>().map(|s| s.contains("buggify:")))
                .unwrap_or(false);
            if !buggify {
                default(info);
            }
        }));
    });
}

fn measure_serve(p: &BenchParams) -> ServeMeasurement {
    quiet_buggify_panics();

    let baselines = p.serve_baselines.max(1);
    let server = Server::new(ServeConfig {
        queue_capacity: p.serve_queries.max(1),
        ..ServeConfig::default()
    })
    .expect("pool starts"); // lint: allow(panic-path) -- no worker pool means no benchmark; abort loudly

    // Cold vs warm: the same `baseline`-mode batch twice. The first run
    // computes every distinct baseline; the second is pure cache hits —
    // the ≥10x claim docs/SCENARIO_SERVER.md makes for the cache.
    let cold_batch: Vec<ScenarioQuery> = (0..baselines)
        .map(|b| {
            let mut q = serve_query(p, b, b);
            q.mode = besst_serve::query::QueryMode::Baseline;
            q
        })
        .collect();
    let run_batch = |batch: &[ScenarioQuery]| {
        let start = Instant::now();
        let resps = server.handle_batch(batch);
        let wall = start.elapsed().as_secs_f64();
        assert_eq!(resps.len(), batch.len(), "exactly one response per query");
        wall
    };
    let cold_wall_s = run_batch(&cold_batch);
    let warm_wall_s = run_batch(&cold_batch);
    let cached_speedup = cold_wall_s / warm_wall_s.max(1e-12);

    // Throughput: a full online batch over the now-warm cache.
    let batch: Vec<ScenarioQuery> =
        (0..p.serve_queries).map(|i| serve_query(p, i % baselines, i)).collect();
    let wall_s = run_batch(&batch);
    let queries_per_sec = batch.len() as f64 / wall_s.max(1e-12);
    let cache = server.cache_stats();
    let cache_hit_rate = cache.hits as f64 / ((cache.hits + cache.misses) as f64).max(1.0);

    // Shed rate: the same batch against a server admitting only half.
    let strict = Server::new(ServeConfig {
        queue_capacity: (p.serve_queries / 2).max(1),
        ..ServeConfig::default()
    })
    .expect("pool starts"); // lint: allow(panic-path) -- no worker pool means no benchmark; abort loudly
    strict.handle_batch(&batch);
    let s = strict.stats();
    let shed_rate = s.shed as f64 / (s.received as f64).max(1.0);

    // Chaos summary: the same batch under the `serve` preset. Every query
    // must still be answered (the chaos gate proves bit-identity; here we
    // record the injection profile next to the throughput numbers).
    let chaotic = Server::new(ServeConfig {
        queue_capacity: p.serve_queries.max(1),
        chaos: Some(Chaos::new(p.seed ^ 0xC4A05)),
        ..ServeConfig::default()
    })
    .expect("pool starts"); // lint: allow(panic-path) -- no worker pool means no benchmark; abort loudly
    let resps = chaotic.handle_batch(&batch);
    assert_eq!(resps.len(), batch.len(), "chaos run answers everything");
    ServeMeasurement {
        wall_s,
        queries_per_sec,
        cache_hit_rate,
        shed_rate,
        cold_wall_s,
        warm_wall_s,
        cached_speedup,
        chaos_ok: chaotic.stats().ok,
        chaos: chaotic.chaos_stats(),
        panics_caught: chaotic.stats().panics_caught,
    }
}

/// The storm seed for the failover run: pinned independently of
/// `BenchParams::seed` because its *meaning* is pinned — shards 0 and 2
/// of the 4-shard cluster storm under it (the gate in
/// `crates/serve/tests/storm.rs` asserts exactly that).
const FAILOVER_STORM_SEED: u64 = 0x2;
const FAILOVER_SHARDS: u32 = 4;
const FAILOVER_REPLICATION: u32 = 3;

struct ClusterMeasurement {
    /// `(shards, wall_s, queries_per_sec)` for the warm scaling sweep.
    scaling: Vec<(u32, f64, f64)>,
    failover_wall_s: f64,
    failover_qps: f64,
    deaths: u64,
    rejoins: u64,
    failovers: u64,
    shard_crashes: u64,
    /// Queries the storm run lost, answered twice, or answered with a
    /// line differing from the fault-free single-shard run. All three
    /// must be zero — the bench asserts it, the report records it.
    lost: u64,
    duplicated: u64,
    mismatched: u64,
}

fn measure_cluster(p: &BenchParams) -> ClusterMeasurement {
    quiet_buggify_panics();
    let baselines = p.serve_baselines.max(1);
    let batch: Vec<ScenarioQuery> =
        (0..p.serve_queries).map(|i| serve_query(p, i % baselines, i)).collect();

    // Scaling sweep: the same warm batch at 1, 2, and 4 shards. Each
    // shard count gets a fresh server; the first (untimed) run warms the
    // per-shard caches so the sweep compares steady-state routing cost,
    // not cold-cache noise.
    let mut scaling = Vec::new();
    let mut canonical: Vec<String> = Vec::new();
    for shards in [1u32, 2, 4] {
        let server = Server::new(ServeConfig {
            queue_capacity: p.serve_queries.max(1),
            cluster: ClusterConfig::sharded(shards),
            ..ServeConfig::default()
        })
        .expect("pool starts"); // lint: allow(panic-path) -- no worker pool means no benchmark; abort loudly
        server.handle_batch(&batch);
        let start = Instant::now();
        let resps = server.handle_batch(&batch);
        let wall = start.elapsed().as_secs_f64();
        assert_eq!(resps.len(), batch.len(), "exactly one response per query");
        if shards == 1 {
            canonical = resps.iter().map(besst_serve::protocol::render_response).collect();
        }
        scaling.push((shards, wall, batch.len() as f64 / wall.max(1e-12)));
    }

    // Failover run: the full storm preset against the sharded cluster.
    // Shards 0 and 2 die and rejoin mid-batch; every query must still be
    // answered exactly once, bit-identical to the single-shard run.
    let stormy = Server::new(ServeConfig {
        queue_capacity: p.serve_queries.max(1),
        cluster: ClusterConfig {
            replication: FAILOVER_REPLICATION,
            ..ClusterConfig::sharded(FAILOVER_SHARDS)
        },
        chaos: Some(Chaos::storm(FAILOVER_STORM_SEED)),
        ..ServeConfig::default()
    })
    .expect("pool starts"); // lint: allow(panic-path) -- no worker pool means no benchmark; abort loudly
    let start = Instant::now();
    let resps = stormy.handle_batch(&batch);
    let failover_wall_s = start.elapsed().as_secs_f64();

    let lost = batch.len().saturating_sub(resps.len()) as u64;
    let duplicated = resps.len().saturating_sub(batch.len()) as u64;
    let mismatched = resps
        .iter()
        .map(besst_serve::protocol::render_response)
        .zip(&canonical)
        .filter(|(storm, clean)| &storm != clean)
        .count() as u64;
    assert_eq!(
        (lost, duplicated, mismatched),
        (0, 0, 0),
        "the failover run lost, duplicated, or changed answers"
    );

    let cluster = stormy.cluster_stats();
    ClusterMeasurement {
        scaling,
        failover_wall_s,
        failover_qps: batch.len() as f64 / failover_wall_s.max(1e-12),
        deaths: cluster.deaths,
        rejoins: cluster.rejoins,
        failovers: cluster.failovers,
        shard_crashes: stormy.chaos_stats().shard_crashes,
        lost,
        duplicated,
        mismatched,
    }
}

fn json_f(x: f64) -> String {
    // Hand-rolled float formatting: finite, plain decimal/exponent forms
    // only (JSON has no NaN/Infinity).
    assert!(x.is_finite(), "non-finite value in bench report: {x}");
    format!("{x:.6e}")
}

fn leaf(wall_s: f64, rate_name: &str, rate: f64, extra: &[(&str, String)]) -> String {
    let mut fields = vec![
        format!("\"wall_s\": {}", json_f(wall_s)),
        format!("\"{rate_name}\": {}", json_f(rate)),
    ];
    for (k, v) in extra {
        fields.push(format!("\"{k}\": {v}"));
    }
    format!("{{ {} }}", fields.join(", "))
}

/// Run every workload and render the JSON report.
pub fn run(p: &BenchParams) -> String {
    let run_start = Instant::now();
    let alloc_start = allocations_now();

    // ── Engine: arena scheduler vs BinaryHeap reference ──────────────
    let arena = measure_engine::<Scheduler<FatPayload>>(p);
    let reference = measure_engine::<ReferenceScheduler<FatPayload>>(p);
    let engine_events =
        churn_total_events(p.components, p.backlog, p.hops) * u64::from(p.engine_iters);
    let speedup = arena.events_per_sec / reference.events_per_sec;

    // ── Online replay: fail-stop, then fail-stop + SDC ───────────────
    let period = *p.overlay_periods.first().expect("at least one period"); // lint: allow(panic-path) -- BenchParams constructors always fill the sweep
    let trace = lulesh_trace(period, p.lulesh_steps, p.seed);
    let tl = lulesh_timeline(&trace);
    let makespan = tl.failure_free_makespan();
    let crash = measure_replay(&tl, &crash_online_cfg(period, makespan), p.seed ^ 0xC8A5, p.online_replicas);
    let sdc = measure_replay(&tl, &sdc_online_cfg(period, makespan), p.seed ^ 0x5DC0, p.online_replicas);

    // ── Overlay sweep: expected makespan across checkpoint periods ───
    let overlay_alloc = allocations_now();
    let overlay_start = Instant::now();
    let mut cells = 0u32;
    for &period in &p.overlay_periods {
        let res = lulesh_trace(period, p.lulesh_steps, p.seed);
        let tl = lulesh_timeline(&res);
        let layout = GroupLayout::new(&FtiConfig::l1_only(period), 64);
        let process = FaultProcess::new(tl.failure_free_makespan(), 2, 0.3);
        let m = expected_makespan(&tl, &process, Some(&layout), p.seed ^ 0x0423, p.overlay_replicas)
            .expect("overlay replays stay inside the layout"); // lint: allow(panic-path) -- a livelocked overlay cell is a bench bug; abort loudly
        assert!(m.is_finite(), "overlay sweep cell livelocked at period {period}");
        cells += 1;
    }
    let overlay_wall = overlay_start.elapsed().as_secs_f64();
    let overlay_allocs = allocations_now() - overlay_alloc;

    // ── Weak scaling: torus relay from 64k out to 1M+ components ─────
    let weak: Vec<(u32, Vec<usize>, SubstrateMeasurement)> = p
        .weak_scaling_exponents
        .iter()
        .map(|&k| {
            let dims = Torus::balanced_pow2_dims(5, k);
            let t = Torus::new(&dims);
            let m = measure_substrate(
                || torus_substrate_builder(&t),
                p.substrate_seeds_per_16,
                p.substrate_hops,
            );
            (k, dims, m)
        })
        .collect();
    let weak_lo = weak.iter().map(|(_, _, m)| m.bytes_per_component).fold(f64::INFINITY, f64::min);
    let weak_hi = weak.iter().map(|(_, _, m)| m.bytes_per_component).fold(0.0f64, f64::max);
    let bytes_flat_ratio = if weak_lo > 0.0 { weak_hi / weak_lo } else { 0.0 };

    // ── Full machines: Quartz fat-tree nodes, Vulcan torus cores ─────
    let quartz_ft = FatTree::fitting(p.quartz_nodes, 32, 0.5);
    let quartz = measure_substrate(
        || fattree_substrate_builder(&quartz_ft, p.quartz_nodes),
        p.substrate_seeds_per_16,
        p.substrate_hops,
    );
    let vulcan_t = Torus::new(&p.vulcan_dims);
    let vulcan = measure_substrate(
        || torus_cores_substrate_builder(&vulcan_t, p.vulcan_cores),
        p.substrate_seeds_per_16,
        p.substrate_hops,
    );

    // ── Scenario server: throughput, shedding, cache, chaos profile ──
    let serve = measure_serve(p);

    // ── Shard cluster: scaling sweep + storm failover run ────────────
    let cluster = measure_cluster(p);
    let scaling_cells = cluster
        .scaling
        .iter()
        .map(|&(shards, wall, qps)| {
            format!(
                "{{ \"shards\": {shards}, \"wall_s\": {}, \"queries_per_sec\": {} }}",
                json_f(wall),
                json_f(qps)
            )
        })
        .collect::<Vec<_>>()
        .join(", ");

    let total_wall = run_start.elapsed().as_secs_f64();
    let total_allocs = allocations_now() - alloc_start;
    let substrate_events: u64 =
        weak.iter().map(|(_, _, m)| m.delivered).sum::<u64>() + quartz.delivered + vulcan.delivered;
    let total_events =
        2 * engine_events + crash.fault_events_total + sdc.fault_events_total + substrate_events;

    let substrate_fields = |m: &SubstrateMeasurement| {
        format!(
            "\"components\": {}, \"wall_s\": {}, \"events_per_sec\": {}, \"delivered\": {}, \
             \"bytes_per_component\": {}, \"peak_queue_depth\": {}",
            m.components,
            json_f(m.wall_s),
            json_f(m.events_per_sec),
            m.delivered,
            json_f(m.bytes_per_component),
            m.peak_queue_depth
        )
    };
    let dims_json = |dims: &[usize]| {
        dims.iter().map(ToString::to_string).collect::<Vec<_>>().join(", ")
    };
    let weak_points = weak
        .iter()
        .map(|(k, dims, m)| {
            format!(
                "{{ \"exponent\": {k}, \"dims\": [{}], {} }}",
                dims_json(dims),
                substrate_fields(m)
            )
        })
        .collect::<Vec<_>>()
        .join(", ");

    let engine_leaf = |m: &EngineMeasurement| {
        leaf(
            m.wall_s,
            "events_per_sec",
            m.events_per_sec,
            &[
                ("peak_queue_depth", m.peak_queue_depth.to_string()),
                ("allocations", m.allocations.to_string()),
            ],
        )
    };
    let replay_leaf = |m: &ReplayMeasurement| {
        leaf(
            m.wall_s,
            "replays_per_sec",
            m.replays_per_sec,
            &[
                ("fault_events_total", m.fault_events_total.to_string()),
                ("allocations", m.allocations.to_string()),
            ],
        )
    };

    let periods = p
        .overlay_periods
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(", ");

    format!(
        "{{\n\
         \u{20} \"schema\": \"besst-bench-json-v4\",\n\
         \u{20} \"bench_id\": \"BENCH_0011\",\n\
         \u{20} \"seed\": {seed},\n\
         \u{20} \"engine\": {{\n\
         \u{20}   \"workload\": \"churn\",\n\
         \u{20}   \"components\": {components},\n\
         \u{20}   \"backlog\": {backlog},\n\
         \u{20}   \"hops\": {hops},\n\
         \u{20}   \"iterations\": {iters},\n\
         \u{20}   \"events_total\": {engine_events},\n\
         \u{20}   \"scheduler\": {arena},\n\
         \u{20}   \"reference\": {reference},\n\
         \u{20}   \"speedup\": {speedup}\n\
         \u{20} }},\n\
         \u{20} \"online_replay\": {{\n\
         \u{20}   \"trace\": \"lulesh epr10 x 64 ranks, L1 @{period}\",\n\
         \u{20}   \"steps\": {steps},\n\
         \u{20}   \"replicas\": {replicas},\n\
         \u{20}   \"fail_stop\": {crash},\n\
         \u{20}   \"sdc\": {sdc}\n\
         \u{20} }},\n\
         \u{20} \"overlay_sweep\": {{\n\
         \u{20}   \"periods\": [{periods}],\n\
         \u{20}   \"replicas_per_cell\": {overlay_replicas},\n\
         \u{20}   \"cells\": {cells},\n\
         \u{20}   \"trace_peak_queue_depth\": {trace_peak},\n\
         \u{20}   \"wall_s\": {overlay_wall},\n\
         \u{20}   \"cells_per_sec\": {cells_per_sec},\n\
         \u{20}   \"allocations\": {overlay_allocs}\n\
         \u{20} }},\n\
         \u{20} \"serve\": {{\n\
         \u{20}   \"queries\": {serve_queries},\n\
         \u{20}   \"distinct_baselines\": {serve_baselines},\n\
         \u{20}   \"steps\": {serve_steps},\n\
         \u{20}   \"wall_s\": {serve_wall},\n\
         \u{20}   \"queries_per_sec\": {serve_qps},\n\
         \u{20}   \"cache_hit_rate\": {serve_hit_rate},\n\
         \u{20}   \"shed_rate\": {serve_shed_rate},\n\
         \u{20}   \"cold_baseline_wall_s\": {serve_cold},\n\
         \u{20}   \"warm_baseline_wall_s\": {serve_warm},\n\
         \u{20}   \"cached_speedup\": {serve_speedup},\n\
         \u{20}   \"chaos\": {{\n\
         \u{20}     \"ok\": {serve_chaos_ok},\n\
         \u{20}     \"panics_caught\": {serve_panics},\n\
         \u{20}     \"worker_crashes\": {serve_crashes},\n\
         \u{20}     \"worker_delays\": {serve_delays},\n\
         \u{20}     \"cache_corruptions\": {serve_corruptions}\n\
         \u{20}   }}\n\
         \u{20} }},\n\
         \u{20} \"serve_cluster\": {{\n\
         \u{20}   \"queries\": {serve_queries},\n\
         \u{20}   \"scaling\": [{scaling_cells}],\n\
         \u{20}   \"failover\": {{\n\
         \u{20}     \"shards\": {failover_shards},\n\
         \u{20}     \"replication\": {failover_replication},\n\
         \u{20}     \"storm_seed\": {failover_storm_seed},\n\
         \u{20}     \"wall_s\": {failover_wall},\n\
         \u{20}     \"queries_per_sec\": {failover_qps},\n\
         \u{20}     \"deaths\": {failover_deaths},\n\
         \u{20}     \"rejoins\": {failover_rejoins},\n\
         \u{20}     \"failovers\": {failover_failovers},\n\
         \u{20}     \"shard_crashes\": {failover_shard_crashes},\n\
         \u{20}     \"lost\": {failover_lost},\n\
         \u{20}     \"duplicated\": {failover_duplicated},\n\
         \u{20}     \"mismatched\": {failover_mismatched}\n\
         \u{20}   }}\n\
         \u{20} }},\n\
         \u{20} \"weak_scaling\": {{\n\
         \u{20}   \"workload\": \"torus-relay\",\n\
         \u{20}   \"storage\": \"soa-flat\",\n\
         \u{20}   \"hops\": {substrate_hops},\n\
         \u{20}   \"seeds_per_16_components\": {seeds_per_16},\n\
         \u{20}   \"bytes_flat_ratio\": {bytes_flat_ratio},\n\
         \u{20}   \"points\": [{weak_points}]\n\
         \u{20} }},\n\
         \u{20} \"full_machine\": {{\n\
         \u{20}   \"quartz\": {{ \"fabric\": \"fat-tree-2stage\", \"n_leaves\": {quartz_leaves}, \
                     \"leaf_degree\": {quartz_leaf_degree}, {quartz_fields} }},\n\
         \u{20}   \"vulcan_cores\": {{ \"fabric\": \"torus\", \"dims\": [{vulcan_dims}], \
                     \"cores\": {vulcan_cores}, \"node_degree\": {vulcan_degree}, {vulcan_fields} }}\n\
         \u{20} }},\n\
         \u{20} \"totals\": {{\n\
         \u{20}   \"wall_s\": {total_wall},\n\
         \u{20}   \"events_total\": {total_events},\n\
         \u{20}   \"allocations\": {total_allocs}\n\
         \u{20} }}\n\
         }}\n",
        seed = p.seed,
        components = p.components,
        backlog = p.backlog,
        hops = p.hops,
        iters = p.engine_iters,
        engine_events = engine_events,
        arena = engine_leaf(&arena),
        reference = engine_leaf(&reference),
        speedup = json_f(speedup),
        period = period,
        steps = p.lulesh_steps,
        replicas = p.online_replicas,
        crash = replay_leaf(&crash),
        sdc = replay_leaf(&sdc),
        periods = periods,
        overlay_replicas = p.overlay_replicas,
        cells = cells,
        trace_peak = trace.peak_queue_depth,
        overlay_wall = json_f(overlay_wall),
        cells_per_sec = json_f(f64::from(cells) / overlay_wall.max(1e-12)),
        overlay_allocs = overlay_allocs,
        serve_queries = p.serve_queries,
        serve_baselines = p.serve_baselines,
        serve_steps = p.serve_steps,
        serve_wall = json_f(serve.wall_s),
        serve_qps = json_f(serve.queries_per_sec),
        serve_hit_rate = json_f(serve.cache_hit_rate),
        serve_shed_rate = json_f(serve.shed_rate),
        serve_cold = json_f(serve.cold_wall_s),
        serve_warm = json_f(serve.warm_wall_s),
        serve_speedup = json_f(serve.cached_speedup),
        serve_chaos_ok = serve.chaos_ok,
        serve_panics = serve.panics_caught,
        serve_crashes = serve.chaos.worker_crashes,
        serve_delays = serve.chaos.worker_delays,
        serve_corruptions = serve.chaos.cache_corruptions,
        scaling_cells = scaling_cells,
        failover_shards = FAILOVER_SHARDS,
        failover_replication = FAILOVER_REPLICATION,
        failover_storm_seed = FAILOVER_STORM_SEED,
        failover_wall = json_f(cluster.failover_wall_s),
        failover_qps = json_f(cluster.failover_qps),
        failover_deaths = cluster.deaths,
        failover_rejoins = cluster.rejoins,
        failover_failovers = cluster.failovers,
        failover_shard_crashes = cluster.shard_crashes,
        failover_lost = cluster.lost,
        failover_duplicated = cluster.duplicated,
        failover_mismatched = cluster.mismatched,
        substrate_hops = p.substrate_hops,
        seeds_per_16 = p.substrate_seeds_per_16,
        bytes_flat_ratio = json_f(bytes_flat_ratio),
        weak_points = weak_points,
        quartz_leaves = quartz_ft.n_leaves(),
        quartz_leaf_degree = quartz_ft.leaf_degree(),
        quartz_fields = substrate_fields(&quartz),
        vulcan_dims = dims_json(&p.vulcan_dims),
        vulcan_cores = p.vulcan_cores,
        vulcan_degree = vulcan_t.degree(),
        vulcan_fields = substrate_fields(&vulcan),
        total_wall = json_f(total_wall),
        total_events = total_events,
        total_allocs = total_allocs,
    )
}

/// Extract the (first) numeric value of `"key": <number>` inside the
/// report — enough JSON awareness for the schema tests and the speedup
/// gate without a parser dependency.
pub fn json_number(report: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = report.find(&needle)? + needle.len();
    let rest = report[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}
