//! Conservative name-based workspace call graph for the interprocedural
//! rules (D7 `sim-reach`, D9 `site-coverage`).
//!
//! The graph is built from the same lexed [`Line`] stream the per-line
//! rules consume — no `syn`, no type information (the offline stub
//! registry has neither; see docs/OFFLINE_BUILDS.md). Resolution is by
//! *name*, over-approximated on purpose:
//!
//! * A `fn` definition is any `fn <ident>` in the code channel; its body
//!   span is recovered by brace tracking (strings/comments are already
//!   blanked by the lexer, so every brace is structural).
//! * A call is any identifier directly followed by `(` (turbofish
//!   tolerated), excluding keywords, macro invocations (`ident!`), and
//!   the identifier of a `fn` definition itself. Method calls resolve by
//!   bare name — `x.run()` reaches every workspace `run` the caller's
//!   crate could link.
//! * `use path::X as Y;` aliases are resolved, both for call names and
//!   for the banned-API patterns (so `use std::collections::HashMap as
//!   Map` cannot launder hash ordering past D7).
//! * A call in crate `C` can only resolve to library (non-test) functions
//!   of `C`'s transitive workspace dependencies (including `C` itself)
//!   plus functions in the same file. Dependency direction is what keeps
//!   name-based resolution from inventing edges into crates the caller
//!   cannot even link.
//!
//! Over-approximation is the right failure mode here: a false edge can
//! only point *into* the caller's dependency closure, and everything on
//! the simulation path is already D1/D2-clean, so spurious edges do not
//! produce spurious findings — they only make reachability conservative.

use crate::lexer::Line;
use crate::rules::{find_allow_line, NONDET_OK_CRATES, SIM_PATH_CRATES};
use crate::workspace::CrateKind;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::path::PathBuf;

/// A banned-API use (D1/D2 pattern) attributed to the enclosing function.
#[derive(Debug, Clone)]
pub struct BannedUse {
    /// Display name of the pattern, e.g. `Instant::now` or
    /// ``HashMap (aliased as `Map`)``.
    pub pattern: String,
    /// 0-based line of the use.
    pub line: usize,
    /// 0-based column of the match start.
    pub col: usize,
    /// 0-based line of a covering `// lint: allow(sim-reach)`, if any.
    pub allow_line: Option<usize>,
}

/// One function definition with everything D7/D9 need to know about it.
#[derive(Debug, Clone)]
pub struct FnFact {
    /// Function name (bare identifier).
    pub name: String,
    /// 0-based line of the `fn` keyword.
    pub line: usize,
    /// 0-based first line of the span (the definition line).
    pub start: usize,
    /// 0-based last line of the body, inclusive. Equals `start` for
    /// bodyless trait/extern declarations.
    pub end: usize,
    /// True when the definition sits in a `#[cfg(test)]`/`#[test]` region.
    pub is_test: bool,
    /// Callee names (alias-resolved, deduplicated, sorted).
    pub calls: BTreeSet<String>,
    /// D1/D2-banned API uses inside the body (only recorded where the
    /// per-line rules do *not* already police the crate — see
    /// [`scan_file`]).
    pub banned: Vec<BannedUse>,
    /// Fault-site constants referenced in argument position
    /// (`fires(sites::LINK_DROP, …)`), for the D9 hook audit.
    pub site_args: BTreeSet<String>,
}

/// Everything the interprocedural rules need from one source file.
#[derive(Debug, Clone)]
pub struct FileFacts {
    /// Owning package name.
    pub crate_name: String,
    /// Target kind (only [`CrateKind::Lib`] functions are cross-crate
    /// callees).
    pub kind: CrateKind,
    /// Workspace-relative path.
    pub path: PathBuf,
    /// Function definitions in source order.
    pub fns: Vec<FnFact>,
}

/// Rust keywords and std constructors that look like calls but are not
/// workspace functions.
const NON_CALLS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "in", "move", "ref", "box", "dyn", "where",
    "let", "else", "break", "continue", "async", "await", "yield", "fn", "impl", "pub", "use",
    "mod", "unsafe", "as", "static", "const", "type", "enum", "struct", "trait", "true", "false",
    "Some", "None", "Ok", "Err", "Self", "self", "super", "crate", "Fn", "FnMut", "FnOnce",
];

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Extract `use path::X as Y;` aliases (alias → original last segment).
fn extract_aliases(lines: &[Line]) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for l in lines {
        let t = l.code.trim_start();
        let is_use = t.starts_with("use ") || t.starts_with("pub use ") || t.contains(" use ");
        if !is_use || !t.contains(" as ") {
            continue;
        }
        let b: Vec<char> = t.chars().collect();
        let mut from = 0;
        while let Some(rel) = t[from..].find(" as ") {
            let at = from + rel;
            // Walk back over the path to the original's last segment.
            let chars_before = t[..at].chars().count();
            let mut s = chars_before;
            while s > 0 && (is_ident_char(b[s - 1]) || b[s - 1] == ':') {
                s -= 1;
            }
            let path: String = b[s..chars_before].iter().collect();
            let original = path.rsplit("::").next().unwrap_or(&path).to_string();
            // Walk forward over the alias identifier.
            let after = at + " as ".len();
            let alias: String =
                t[after..].chars().take_while(|&c| is_ident_char(c)).collect();
            if !original.is_empty() && !alias.is_empty() && alias != "_" {
                out.insert(alias, original);
            }
            from = after;
        }
    }
    out
}

/// Is the identifier starting at char index `start` preceded by the `fn`
/// keyword (i.e. is it a definition, not a call)?
fn preceded_by_fn(b: &[char], start: usize) -> bool {
    let mut i = start;
    while i > 0 && b[i - 1].is_whitespace() {
        i -= 1;
    }
    i >= 2 && b[i - 2] == 'f' && b[i - 1] == 'n' && (i == 2 || !is_ident_char(b[i - 3]))
}

/// Record every `ident(`-shaped call on one code line into `out`,
/// resolving aliases.
fn extract_calls(code: &str, aliases: &BTreeMap<String, String>, out: &mut BTreeSet<String>) {
    let b: Vec<char> = code.chars().collect();
    let mut i = 0;
    while i < b.len() {
        if !is_ident_start(b[i]) {
            i += 1;
            continue;
        }
        let start = i;
        while i < b.len() && is_ident_char(b[i]) {
            i += 1;
        }
        if start > 0 && is_ident_char(b[start - 1]) {
            continue; // tail of a path segment boundary mishap; be safe
        }
        let name: String = b[start..i].iter().collect();
        // Tolerate a turbofish between name and argument list.
        let mut j = i;
        if j + 2 < b.len() && b[j] == ':' && b[j + 1] == ':' && b[j + 2] == '<' {
            let mut depth = 0usize;
            let mut k = j + 2;
            while k < b.len() {
                match b[k] {
                    '<' => depth += 1,
                    '>' => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            k += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            j = k;
        }
        while j < b.len() && b[j] == ' ' {
            j += 1;
        }
        if j < b.len()
            && b[j] == '('
            && !NON_CALLS.contains(&name.as_str())
            && !preceded_by_fn(&b, start)
        {
            let resolved = aliases.get(&name).cloned().unwrap_or(name);
            out.insert(resolved);
        }
    }
}

/// Find every `fn` definition and its body span by brace tracking.
fn find_fns(lines: &[Line]) -> Vec<FnFact> {
    struct Open {
        fact: usize,
        depth: usize, // brace depth just after the body `{`
    }
    let mut fns: Vec<FnFact> = Vec::new();
    let mut stack: Vec<Open> = Vec::new();
    // A `fn` whose body `{` has not been seen yet: (fact index, paren depth).
    let mut pending: Option<(usize, i32)> = None;
    let mut depth = 0usize;

    for (li, line) in lines.iter().enumerate() {
        let b: Vec<char> = line.code.chars().collect();
        let mut i = 0;
        while i < b.len() {
            let c = b[i];
            if let Some((_, parens)) = &mut pending {
                match c {
                    '(' => *parens += 1,
                    ')' => *parens -= 1,
                    ';' if *parens <= 0 => {
                        // Bodyless declaration (trait method, extern).
                        pending = None;
                    }
                    '{' if *parens <= 0 => {
                        depth += 1;
                        if let Some((f, _)) = pending.take() {
                            stack.push(Open { fact: f, depth });
                        }
                        i += 1;
                        continue;
                    }
                    _ => {}
                }
            }
            match c {
                '{' if pending.is_none() => depth += 1,
                '}' => {
                    depth = depth.saturating_sub(1);
                    while let Some(o) = stack.last() {
                        if o.depth <= depth {
                            break;
                        }
                        fns[o.fact].end = li;
                        stack.pop();
                    }
                }
                'f' if pending.is_none() => {
                    // A `fn` keyword followed by an identifier?
                    let boundary_before = i == 0 || !is_ident_char(b[i - 1]);
                    if boundary_before
                        && i + 2 < b.len()
                        && b[i + 1] == 'n'
                        && b[i + 2].is_whitespace()
                    {
                        let mut k = i + 2;
                        while k < b.len() && b[k].is_whitespace() {
                            k += 1;
                        }
                        if k < b.len() && is_ident_start(b[k]) {
                            let mut e = k;
                            while e < b.len() && is_ident_char(b[e]) {
                                e += 1;
                            }
                            let name: String = b[k..e].iter().collect();
                            fns.push(FnFact {
                                name,
                                line: li,
                                start: li,
                                end: li,
                                is_test: line.is_test,
                                calls: BTreeSet::new(),
                                banned: Vec::new(),
                                site_args: BTreeSet::new(),
                            });
                            pending = Some((fns.len() - 1, 0));
                            i = e;
                            continue;
                        }
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    // Unclosed bodies (truncated file): close at EOF.
    let last = lines.len().saturating_sub(1);
    for o in stack {
        fns[o.fact].end = last;
    }
    fns
}

/// Match a `Path::seg`-style pattern at non-identifier boundaries.
fn find_path_pattern(hay: &str, needle: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(rel) = hay[from..].find(needle) {
        let at = from + rel;
        let before_ok = at == 0 || !hay[..at].chars().next_back().is_some_and(is_ident_char);
        let end = at + needle.len();
        let after_ok = end >= hay.len() || !hay[end..].chars().next().is_some_and(is_ident_char);
        if before_ok && after_ok {
            return Some(at);
        }
        from = end;
    }
    None
}

/// Word-boundary match, shared with the per-line rules.
fn find_word(hay: &str, needle: &str) -> Option<usize> {
    find_path_pattern(hay, needle)
}

/// `sites::X` occurrences in argument position (an unclosed `(` earlier on
/// the line) — the shape of a hook call like `fires(sites::LINK_DROP, …)`.
/// Match-arm mappings (`sites::LINK_DROP => self.link_drop_p`) are *not*
/// argument-position and are deliberately excluded: `probability()` names
/// every site and would otherwise make the D9 hook audit vacuous.
fn site_args_on_line(code: &str, out: &mut BTreeSet<String>) {
    let mut from = 0;
    while let Some(rel) = code[from..].find("sites::") {
        let at = from + rel;
        let opens = code[..at].matches('(').count();
        let closes = code[..at].matches(')').count();
        let name: String =
            code[at + "sites::".len()..].chars().take_while(|&c| is_ident_char(c)).collect();
        if opens > closes && !name.is_empty() {
            out.insert(name);
        }
        from = at + "sites::".len();
    }
}

/// Banned-API patterns D7 polices for this crate. Families already policed
/// per-line are skipped so D7 never double-reports: D1 owns hash-ordered
/// collections *inside* sim-path crates, D2 owns ambient nondeterminism
/// everywhere *except* [`NONDET_OK_CRATES`]. What remains — and what only
/// reachability can catch — is a helper crate off the sim path whose
/// function is nevertheless reachable from event dispatch.
fn banned_patterns(
    crate_name: &str,
    aliases: &BTreeMap<String, String>,
) -> (Vec<String>, Vec<String>) {
    let mut words = Vec::new();
    let mut paths = Vec::new();
    if !SIM_PATH_CRATES.contains(&crate_name) {
        words.push("HashMap".to_string());
        words.push("HashSet".to_string());
    }
    if NONDET_OK_CRATES.contains(&crate_name) {
        words.push("thread_rng".to_string());
        words.push("from_entropy".to_string());
        paths.push("SystemTime::now".to_string());
        paths.push("Instant::now".to_string());
        paths.push("rand::random".to_string());
    }
    for (alias, original) in aliases {
        match original.as_str() {
            "HashMap" | "HashSet" if !SIM_PATH_CRATES.contains(&crate_name) => {
                words.push(format!("{alias}\u{0}{original}"));
            }
            "thread_rng" | "from_entropy" if NONDET_OK_CRATES.contains(&crate_name) => {
                words.push(format!("{alias}\u{0}{original}"));
            }
            "Instant" | "SystemTime" if NONDET_OK_CRATES.contains(&crate_name) => {
                paths.push(format!("{alias}::now\u{0}{original}::now"));
            }
            _ => {}
        }
    }
    (words, paths)
}

/// Split an encoded `needle\0display-original` banned pattern.
fn pattern_parts(p: &str) -> (&str, String) {
    match p.split_once('\u{0}') {
        Some((needle, original)) => {
            (needle, format!("{original} (aliased as `{needle}`)"))
        }
        None => (p, p.to_string()),
    }
}

/// Scan one lexed file into [`FileFacts`]: function spans, calls, banned
/// uses, and site references, each attributed to the innermost enclosing
/// function.
pub fn scan_file(ctx: &crate::rules::FileContext, lines: &[Line]) -> FileFacts {
    let aliases = extract_aliases(lines);
    let mut fns = find_fns(lines);
    let (banned_words, banned_paths) = banned_patterns(&ctx.crate_name, &aliases);

    // Innermost-fn attribution: for each line, the containing fn with the
    // smallest span (ties: the one that starts latest).
    let mut owner: Vec<Option<usize>> = vec![None; lines.len()];
    for (fi, f) in fns.iter().enumerate() {
        let stop = f.end.min(lines.len().saturating_sub(1));
        for slot in owner.iter_mut().take(stop + 1).skip(f.start) {
            let better = match *slot {
                None => true,
                Some(prev) => {
                    let p = &fns[prev];
                    let (ps, fs) = (p.end - p.start, f.end - f.start);
                    fs < ps || (fs == ps && f.start >= p.start)
                }
            };
            if better {
                *slot = Some(fi);
            }
        }
    }

    for (li, line) in lines.iter().enumerate() {
        let code = line.code.as_str();
        if code.is_empty() {
            continue;
        }
        let Some(fi) = owner[li] else { continue };
        extract_calls(code, &aliases, &mut fns[fi].calls);
        site_args_on_line(code, &mut fns[fi].site_args);
        for (pats, path_style) in [(&banned_words, false), (&banned_paths, true)] {
            for p in pats {
                let (needle, display) = pattern_parts(p);
                let hit = if path_style {
                    find_path_pattern(code, needle)
                } else {
                    find_word(code, needle)
                };
                if let Some(col) = hit {
                    fns[fi].banned.push(BannedUse {
                        pattern: display,
                        line: li,
                        col,
                        allow_line: find_allow_line(lines, li, "sim-reach"),
                    });
                }
            }
        }
    }

    FileFacts { crate_name: ctx.crate_name.clone(), kind: ctx.kind, path: ctx.path.clone(), fns }
}

/// One node of the call graph: `(file index, fn index)` into
/// [`CallGraph::files`].
pub type NodeId = usize;

/// The workspace call graph.
#[derive(Debug)]
pub struct CallGraph {
    /// Per-file facts, in the walk order they were scanned.
    pub files: Vec<FileFacts>,
    /// `nodes[n] = (file, fn)` indices.
    pub nodes: Vec<(usize, usize)>,
    edges: Vec<Vec<NodeId>>,
}

/// Compute each crate's transitive workspace-dependency closure (including
/// itself). Cycle-tolerant: a visited set bounds the walk even if the
/// dependency map (which cargo would reject) contained a loop.
pub fn crate_closure(deps: &BTreeMap<String, Vec<String>>) -> BTreeMap<String, BTreeSet<String>> {
    let mut out = BTreeMap::new();
    for name in deps.keys() {
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut stack = vec![name.clone()];
        while let Some(c) = stack.pop() {
            if !seen.insert(c.clone()) {
                continue;
            }
            if let Some(ds) = deps.get(&c) {
                stack.extend(ds.iter().cloned());
            }
        }
        out.insert(name.clone(), seen);
    }
    out
}

impl CallGraph {
    /// Build the graph: resolve each function's call names to candidate
    /// definitions, restricted by crate dependency direction.
    pub fn build(files: Vec<FileFacts>, deps: &BTreeMap<String, Vec<String>>) -> CallGraph {
        let closure = crate_closure(deps);
        let mut nodes: Vec<(usize, usize)> = Vec::new();
        for (fi, f) in files.iter().enumerate() {
            for (gi, _) in f.fns.iter().enumerate() {
                nodes.push((fi, gi));
            }
        }
        // Cross-crate candidates: library, non-test functions only.
        let mut lib_index: BTreeMap<&str, Vec<NodeId>> = BTreeMap::new();
        // Same-file candidates: anything, including test helpers.
        let mut file_index: BTreeMap<(usize, &str), Vec<NodeId>> = BTreeMap::new();
        for (n, &(fi, gi)) in nodes.iter().enumerate() {
            let f = &files[fi].fns[gi];
            if files[fi].kind == CrateKind::Lib && !f.is_test {
                lib_index.entry(f.name.as_str()).or_default().push(n);
            }
            file_index.entry((fi, f.name.as_str())).or_default().push(n);
        }
        let empty = BTreeSet::new();
        let mut edges: Vec<Vec<NodeId>> = Vec::with_capacity(nodes.len());
        for &(fi, gi) in &nodes {
            let krate = files[fi].crate_name.as_str();
            let allowed = closure.get(krate).unwrap_or(&empty);
            let mut out: BTreeSet<NodeId> = BTreeSet::new();
            for call in &files[fi].fns[gi].calls {
                if let Some(cands) = lib_index.get(call.as_str()) {
                    for &c in cands {
                        let callee_crate = files[self_file(&nodes, c)].crate_name.as_str();
                        if allowed.contains(callee_crate) {
                            out.insert(c);
                        }
                    }
                }
                if let Some(cands) = file_index.get(&(fi, call.as_str())) {
                    out.extend(cands.iter().copied());
                }
            }
            edges.push(out.into_iter().collect());
        }
        CallGraph { files, nodes, edges }
    }

    /// The function behind a node.
    pub fn fn_fact(&self, n: NodeId) -> &FnFact {
        let (fi, gi) = self.nodes[n];
        &self.files[fi].fns[gi]
    }

    /// The file behind a node.
    pub fn file(&self, n: NodeId) -> &FileFacts {
        &self.files[self.nodes[n].0]
    }

    /// `name (path:line)` display label for a node.
    pub fn label(&self, n: NodeId) -> String {
        let f = self.fn_fact(n);
        format!("`{}` ({}:{})", f.name, self.file(n).path.display(), f.line + 1)
    }

    /// BFS from `roots`; returns reached node → BFS parent (roots map to
    /// `None`). Deterministic: roots and adjacency are visited in sorted
    /// order. Cycles are harmless — each node is visited once.
    pub fn reachable(&self, roots: &[NodeId]) -> BTreeMap<NodeId, Option<NodeId>> {
        let mut parent: BTreeMap<NodeId, Option<NodeId>> = BTreeMap::new();
        let mut sorted: Vec<NodeId> = roots.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut q: VecDeque<NodeId> = VecDeque::new();
        for r in sorted {
            if parent.insert(r, None).is_none() {
                q.push_back(r);
            }
        }
        while let Some(n) = q.pop_front() {
            for &m in &self.edges[n] {
                if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(m) {
                    e.insert(Some(n));
                    q.push_back(m);
                }
            }
        }
        parent
    }

    /// The root→node call chain as ` → `-joined labels.
    pub fn chain(&self, reach: &BTreeMap<NodeId, Option<NodeId>>, n: NodeId) -> String {
        let mut path = vec![n];
        let mut cur = n;
        while let Some(Some(p)) = reach.get(&cur) {
            cur = *p;
            path.push(cur);
            if path.len() > 64 {
                break; // cycles cannot occur in a BFS tree; belt and braces
            }
        }
        path.reverse();
        path.iter().map(|&m| self.label(m)).collect::<Vec<_>>().join(" → ")
    }

    /// The engines' event-dispatch roots: `run`/`run_to_completion` in the
    /// sequential engine, `run` in the parallel engine, plus every
    /// library-target `on_event`/`on_start` implementation workspace-wide
    /// (components are driven through `dyn Component`, which name-based
    /// resolution cannot follow — so every implementor is a root).
    pub fn dispatch_roots(&self) -> Vec<NodeId> {
        const ENGINE_FILES: &[(&str, &[&str])] = &[
            ("crates/des/src/engine.rs", &["run", "run_to_completion"]),
            ("crates/des/src/parallel.rs", &["run"]),
        ];
        let mut roots = Vec::new();
        for (n, &(fi, gi)) in self.nodes.iter().enumerate() {
            let file = &self.files[fi];
            let f = &file.fns[gi];
            if file.kind != CrateKind::Lib || f.is_test {
                continue;
            }
            let p = file.path.to_string_lossy();
            let engine_entry = ENGINE_FILES
                .iter()
                .any(|(suffix, names)| p.ends_with(suffix) && names.contains(&f.name.as_str()));
            let component_entry = f.name == "on_event" || f.name == "on_start";
            if engine_entry || component_entry {
                roots.push(n);
            }
        }
        roots
    }

    /// Roots for the D9 hook audit: dispatch roots plus every library
    /// function of the scenario server (serve wires fault sites outside
    /// the engines' dispatch loop, in its chaos gate).
    pub fn hook_roots(&self) -> Vec<NodeId> {
        let mut roots = self.dispatch_roots();
        for (n, &(fi, gi)) in self.nodes.iter().enumerate() {
            let file = &self.files[fi];
            if file.crate_name == "besst-serve"
                && file.kind == CrateKind::Lib
                && !file.fns[gi].is_test
            {
                roots.push(n);
            }
        }
        roots
    }
}

fn self_file(nodes: &[(usize, usize)], n: NodeId) -> usize {
    nodes[n].0
}

/// One fault-site constant from `besst_des::buggify::sites`.
#[derive(Debug, Clone)]
pub struct SiteConst {
    /// Constant name, e.g. `LINK_DROP`.
    pub name: String,
    /// 0-based line of the `pub const`.
    pub line: usize,
    /// 0-based line of a covering `// lint: allow(site-coverage)`, if any.
    pub allow_line: Option<usize>,
}

/// The parsed fault-site catalog of `crates/des/src/buggify.rs`:
/// site constants, `ALL` registrations, the site→probability-field map,
/// and each preset's nonzero probability fields.
#[derive(Debug, Clone, Default)]
pub struct SiteCatalog {
    /// Site constants in source order.
    pub consts: Vec<SiteConst>,
    /// Names registered in `sites::ALL`.
    pub registered: BTreeSet<String>,
    /// `(name, 0-based line)` of `ALL` entries with no matching constant.
    pub unknown_registered: Vec<(String, usize)>,
    /// Site constant → `FaultConfig` probability field (from the
    /// `probability()` match arms; sites without an arm never fire on
    /// their own).
    pub prob_field: BTreeMap<String, String>,
    /// Preset constructor → probability fields it sets nonzero.
    pub preset_fields: BTreeMap<String, BTreeSet<String>>,
}

/// Parse the fault-site catalog from the lexed buggify source and its
/// scanned facts. Purely lexical, like everything else here: the catalog
/// file's shape (one `pub const NAME: u64` per site inside `mod sites`,
/// struct-literal presets with one field per line) is itself pinned by the
/// D9 tests, so drift fails loudly instead of silently un-auditing.
pub fn parse_site_catalog(lines: &[Line], facts: &FileFacts) -> SiteCatalog {
    let mut cat = SiteCatalog::default();

    // `mod sites { … }` span by brace tracking.
    let mut sites_span: Option<(usize, usize)> = None;
    {
        let mut depth = 0usize;
        let mut open_at: Option<(usize, usize)> = None; // (line, depth at open)
        'outer: for (li, line) in lines.iter().enumerate() {
            let code = line.code.as_str();
            let starts = open_at.is_none()
                && (code.trim_start().starts_with("pub mod sites")
                    || code.trim_start().starts_with("mod sites"));
            for c in code.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        if starts && open_at.is_none() {
                            open_at = Some((li, depth));
                        }
                    }
                    '}' => {
                        if let Some((start, d)) = open_at {
                            if depth == d {
                                sites_span = Some((start, li));
                                break 'outer;
                            }
                        }
                        depth = depth.saturating_sub(1);
                    }
                    _ => {}
                }
            }
        }
    }
    let Some((s0, s1)) = sites_span else { return cat };

    // Constants and the ALL array inside the span.
    let mut in_all = false;
    for li in s0..=s1.min(lines.len() - 1) {
        let t = lines[li].code.trim();
        if let Some(rest) = t.strip_prefix("pub const ") {
            if let Some((name, tail)) = rest.split_once(':') {
                let name = name.trim();
                if name == "ALL" {
                    in_all = true;
                } else if tail.contains("u64")
                    && name.chars().all(|c| c.is_ascii_uppercase() || c == '_')
                {
                    cat.consts.push(SiteConst {
                        name: name.to_string(),
                        line: li,
                        allow_line: find_allow_line(lines, li, "site-coverage"),
                    });
                    continue;
                }
            }
        }
        if in_all {
            let inner = t.trim_start_matches('(');
            let entry: String = inner.chars().take_while(|&c| is_ident_char(c)).collect();
            if t.starts_with('(') && !entry.is_empty() {
                if cat.consts.iter().any(|c| c.name == entry) {
                    cat.registered.insert(entry);
                } else {
                    cat.unknown_registered.push((entry, li));
                }
            }
            if t.contains("];") {
                in_all = false;
            }
        }
    }

    // probability() arms: `sites::NAME => self.FIELD,`.
    if let Some(f) = facts.fns.iter().find(|f| f.name == "probability") {
        for line in lines.iter().take(f.end.min(lines.len() - 1) + 1).skip(f.start) {
            let code = line.code.as_str();
            let (Some(sp), Some(fp)) = (code.find("sites::"), code.find("self.")) else {
                continue;
            };
            let site: String = code[sp + "sites::".len()..]
                .chars()
                .take_while(|&c| is_ident_char(c))
                .collect();
            let field: String =
                code[fp + "self.".len()..].chars().take_while(|&c| is_ident_char(c)).collect();
            if !site.is_empty() && !field.is_empty() {
                cat.prob_field.insert(site, field);
            }
        }
    }

    // Preset constructors named by `config()`, then their nonzero fields.
    let mut preset_fns: BTreeSet<String> = BTreeSet::new();
    if let Some(f) = facts.fns.iter().find(|f| f.name == "config") {
        for line in lines.iter().take(f.end.min(lines.len() - 1) + 1).skip(f.start) {
            let code = line.code.as_str();
            let mut from = 0;
            while let Some(rel) = code[from..].find("FaultConfig::") {
                let at = from + rel + "FaultConfig::".len();
                let name: String =
                    code[at..].chars().take_while(|&c| is_ident_char(c)).collect();
                if !name.is_empty() {
                    preset_fns.insert(name);
                }
                from = at;
            }
        }
    }
    let prob_fields: BTreeSet<&String> = cat.prob_field.values().collect();
    for preset in preset_fns {
        let Some(f) = facts.fns.iter().find(|f| f.name == preset) else { continue };
        let mut nonzero: BTreeSet<String> = BTreeSet::new();
        for line in lines.iter().take(f.end.min(lines.len() - 1) + 1).skip(f.start) {
            let t = line.code.trim();
            let Some((field, value)) = t.split_once(':') else { continue };
            let field = field.trim();
            let value = value.trim().trim_end_matches(',').trim();
            if prob_fields.contains(&field.to_string()) && value != "0.0" && !value.is_empty() {
                nonzero.insert(field.to_string());
            }
        }
        cat.preset_fields.insert(preset, nonzero);
    }
    cat
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::FileContext;

    fn ctx(name: &str, kind: CrateKind, file: &str) -> FileContext {
        FileContext {
            crate_name: name.to_string(),
            kind,
            has_typed_errors: false,
            path: PathBuf::from(file),
        }
    }

    #[test]
    fn fn_spans_and_nesting() {
        let src = "fn outer() {\n    let x = inner();\n    fn inner() -> u32 {\n        helper()\n    }\n}\nfn helper() -> u32 { 7 }\n";
        let c = ctx("besst-des", CrateKind::Lib, "a.rs");
        let facts = scan_file(&c, &lex(src));
        let names: Vec<&str> = facts.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner", "helper"]);
        assert_eq!((facts.fns[0].start, facts.fns[0].end), (0, 5));
        assert_eq!((facts.fns[1].start, facts.fns[1].end), (2, 4));
        // `helper()` on line 3 is attributed to the innermost fn.
        assert!(facts.fns[1].calls.contains("helper"));
        assert!(!facts.fns[0].calls.contains("helper"));
        assert!(facts.fns[0].calls.contains("inner"));
    }

    #[test]
    fn alias_resolution_feeds_calls_and_bans() {
        let src = "use std::collections::HashMap as Map;\nuse crate::util::go as leap;\nfn f() {\n    let m = Map::new();\n    leap();\n}\n";
        // Not a sim-path crate, so the hash family is D7's to police.
        let c = ctx("besst-analytic", CrateKind::Lib, "a.rs");
        let facts = scan_file(&c, &lex(src));
        let f = &facts.fns[0];
        assert!(f.calls.contains("go"), "alias resolved to original: {:?}", f.calls);
        assert_eq!(f.banned.len(), 1, "{:?}", f.banned);
        assert!(f.banned[0].pattern.contains("HashMap"));
        assert!(f.banned[0].pattern.contains("Map"));
    }

    #[test]
    fn cross_crate_edges_respect_dependency_direction() {
        let c1 = ctx("besst-des", CrateKind::Lib, "crates/des/src/lib.rs");
        let f1 = scan_file(&c1, &lex("fn leaf() {}\n"));
        let c2 = ctx("besst-core", CrateKind::Lib, "crates/core/src/lib.rs");
        let f2 = scan_file(&c2, &lex("fn mid() { leaf(); }\n"));
        let c3 = ctx("besst-serve", CrateKind::Lib, "crates/serve/src/lib.rs");
        let f3 = scan_file(&c3, &lex("fn top() { mid(); leaf(); }\n"));
        let mut deps = BTreeMap::new();
        deps.insert("besst-des".to_string(), vec![]);
        deps.insert("besst-core".to_string(), vec!["besst-des".to_string()]);
        deps.insert("besst-serve".to_string(), vec!["besst-core".to_string()]);
        let g = CallGraph::build(vec![f1, f2, f3], &deps);
        // Nodes: 0 = leaf (des), 1 = mid (core), 2 = top (serve).
        let reach = g.reachable(&[2]);
        assert!(reach.contains_key(&0), "serve → core → des chain: {reach:?}");
        assert!(reach.contains_key(&1));
        // des cannot reach "up" into core even with a name match.
        let up = scan_file(&c1, &lex("fn lonely() { mid(); }\n"));
        let g2 = CallGraph::build(vec![up, scan_file(&c2, &lex("fn mid() {}\n"))], &deps);
        let r2 = g2.reachable(&[0]);
        assert!(!r2.contains_key(&1), "dependency direction must block the edge: {r2:?}");
    }

    #[test]
    fn cycles_terminate() {
        let c = ctx("besst-des", CrateKind::Lib, "a.rs");
        let facts = scan_file(&c, &lex("fn ping() { pong(); }\nfn pong() { ping(); }\n"));
        let mut deps = BTreeMap::new();
        deps.insert("besst-des".to_string(), vec![]);
        let g = CallGraph::build(vec![facts], &deps);
        let reach = g.reachable(&[0]);
        assert_eq!(reach.len(), 2);
        let chain = g.chain(&reach, 1);
        assert!(chain.contains("ping") && chain.contains("pong"), "{chain}");
    }

    #[test]
    fn macro_invocations_and_keywords_are_not_calls() {
        let c = ctx("besst-des", CrateKind::Lib, "a.rs");
        let facts =
            scan_file(&c, &lex("fn f() {\n    println!(\"x\");\n    if cond(x) { loop {} }\n}\n"));
        let f = &facts.fns[0];
        assert!(!f.calls.contains("println"));
        assert!(!f.calls.contains("if"));
        assert!(f.calls.contains("cond"));
    }

    #[test]
    fn site_args_require_argument_position() {
        let c = ctx("besst-des", CrateKind::Lib, "crates/des/src/buggify.rs");
        let src = "fn roll(&self) {\n    self.fires(sites::LINK_DROP, a, b);\n}\nfn probability(&self, site: u64) -> f64 {\n    match site {\n        sites::LINK_DROP => self.link_drop_p,\n        _ => 0.0,\n    }\n}\n";
        let facts = scan_file(&c, &lex(src));
        assert!(facts.fns[0].site_args.contains("LINK_DROP"));
        assert!(
            facts.fns[1].site_args.is_empty(),
            "match-arm mappings must not count as hooks: {:?}",
            facts.fns[1].site_args
        );
    }

    #[test]
    fn real_buggify_catalog_parses() {
        let root = crate::workspace::find_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
            .expect("workspace root");
        let src = std::fs::read_to_string(root.join("crates/des/src/buggify.rs")).expect("read");
        let lines = lex(&src);
        let c = ctx("besst-des", CrateKind::Lib, "crates/des/src/buggify.rs");
        let facts = scan_file(&c, &lines);
        let cat = parse_site_catalog(&lines, &facts);
        assert_eq!(cat.consts.len(), 9, "{:?}", cat.consts);
        assert_eq!(cat.registered.len(), 9, "every const registered in ALL");
        assert!(cat.unknown_registered.is_empty());
        // NODE_REPAIR has no probability arm — it rides on NODE_CRASH.
        assert_eq!(cat.prob_field.len(), 8, "{:?}", cat.prob_field);
        assert!(!cat.prob_field.contains_key("NODE_REPAIR"));
        assert!(cat.prob_field.contains_key("SHARD_CRASH"), "{:?}", cat.prob_field);
        // The chaos preset covers link faults.
        let chaos = cat.preset_fields.get("chaos").expect("chaos preset parsed");
        assert!(chaos.contains("link_drop_p"), "{chaos:?}");
    }
}
