//! Documentation link checker.
//!
//! A dependency-free pass over the repo's markdown — `README.md`,
//! `DESIGN.md`, and everything under `docs/` — verifying that
//!
//! 1. every **inline link** `[text](target)` with a relative target
//!    resolves to a real file or directory (external `http(s)`/`mailto`
//!    targets and pure `#anchor` links are skipped; `#fragment` suffixes
//!    are stripped before resolution), and
//! 2. every **textual cross-reference** of the form `docs/NAME.md` —
//!    the idiom the guides, rustdoc comments and the `justfile` use to
//!    point at each other — names a file that actually exists at the
//!    workspace root.
//!
//! Fenced code blocks and inline code spans are excluded from inline-link
//! parsing (markdown *examples* are not links), but `docs/*.md` mentions
//! are checked everywhere: in this repo a guide named in a code block is
//! still a promise that the guide exists.
//!
//! Run as `cargo run -p xtask -- doc-links` (the `just doc-links`
//! recipe); CI fails the build on any broken reference.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// One broken documentation reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkFinding {
    /// File containing the reference, workspace-relative.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// The link target or cross-reference as written.
    pub target: String,
    /// Why it failed to resolve.
    pub why: String,
}

impl fmt::Display for LinkFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "error[doc-links]: `{}` {}\n  --> {}:{}",
            self.target,
            self.why,
            self.file.display(),
            self.line
        )
    }
}

/// Result of a [`check_docs`] pass: coverage counters plus findings, so
/// a clean run can prove it actually scanned something.
#[derive(Debug, Clone, Default)]
pub struct DocLinkReport {
    /// Markdown files scanned.
    pub files: usize,
    /// Inline links + cross-references checked (resolvable or not).
    pub checked: usize,
    /// Broken references, in deterministic (file, line) order.
    pub findings: Vec<LinkFinding>,
}

/// The markdown set the checker covers: `README.md` and `DESIGN.md` at
/// the root plus every `*.md` under `docs/`, sorted for deterministic
/// reports. Missing roots are skipped (a repo without `DESIGN.md` is not
/// a doc-link error).
pub fn doc_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for name in ["README.md", "DESIGN.md"] {
        if root.join(name).is_file() {
            out.push(PathBuf::from(name));
        }
    }
    if let Ok(rd) = fs::read_dir(root.join("docs")) {
        let mut docs: Vec<PathBuf> = rd
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.is_file() && p.extension().is_some_and(|e| e == "md"))
            .filter_map(|p| p.strip_prefix(root).ok().map(Path::to_path_buf))
            .collect();
        docs.sort();
        out.extend(docs);
    }
    out
}

/// Replace inline code spans (`` `…` ``) with spaces so link syntax
/// inside them is not parsed. Unterminated spans blank to end of line,
/// matching how renderers treat a dangling backtick conservatively.
fn blank_code_spans(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut in_span = false;
    for c in line.chars() {
        if c == '`' {
            in_span = !in_span;
            out.push(' ');
        } else if in_span {
            out.push(' ');
        } else {
            out.push(c);
        }
    }
    out
}

/// Extract inline-link targets `[text](target)` from markdown, returning
/// `(1-based line, target)` pairs. Fenced code blocks and inline code
/// spans are skipped; `<…>`-wrapped targets are unwrapped; titles
/// (`[t](file "title")`) are dropped.
pub fn extract_links(text: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut in_fence = false;
    for (i, raw) in text.lines().enumerate() {
        if raw.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let line = blank_code_spans(raw);
        let mut from = 0;
        while let Some(rel) = line[from..].find("](") {
            let open = from + rel + 2;
            // A link needs a `[` somewhere before the `](`.
            if !line[..from + rel].contains('[') {
                from = open;
                continue;
            }
            let Some(close) = line[open..].find(')') else { break };
            let mut target = line[open..open + close].trim();
            // `[t](file "title")` — drop the title.
            if let Some(sp) = target.find(|c: char| c.is_whitespace()) {
                target = target[..sp].trim();
            }
            let target = target.trim_start_matches('<').trim_end_matches('>');
            if !target.is_empty() {
                out.push((i + 1, target.to_string()));
            }
            from = open + close + 1;
        }
    }
    out
}

/// Extract textual `docs/NAME.md` cross-references, returning
/// `(1-based line, "docs/NAME.md")` pairs. Checked in code blocks and
/// code spans too — a guide named anywhere must exist. Trailing sentence
/// punctuation is trimmed.
pub fn extract_doc_refs(text: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let mut from = 0;
        while let Some(rel) = line[from..].find("docs/") {
            let start = from + rel;
            let rest = &line[start + 5..];
            let len = rest
                .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.'))
                .unwrap_or(rest.len());
            let name = rest[..len].trim_end_matches('.');
            if name.ends_with(".md") {
                out.push((i + 1, format!("docs/{name}")));
            }
            from = start + 5 + len;
        }
    }
    out
}

/// Lexically fold `.`/`..` segments before hitting the filesystem:
/// `stat` refuses `docs/../Cargo.toml` when `docs/` itself is missing,
/// but the *link* is still well-defined (and correct) in that case.
fn normalize(path: &Path) -> PathBuf {
    let mut out = PathBuf::new();
    for c in path.components() {
        match c {
            std::path::Component::CurDir => {}
            std::path::Component::ParentDir => {
                out.pop();
            }
            other => out.push(other),
        }
    }
    out
}

/// Should this inline-link target be resolved against the filesystem?
fn is_local(target: &str) -> bool {
    !(target.starts_with('#')
        || target.starts_with("http://")
        || target.starts_with("https://")
        || target.starts_with("mailto:"))
}

/// Check one markdown file's text. `rel` is the file's workspace-relative
/// path (used both for diagnostics and to resolve relative targets).
/// Returns `(checked references, findings)`.
pub fn check_text(root: &Path, rel: &Path, text: &str) -> (usize, Vec<LinkFinding>) {
    let dir = rel.parent().unwrap_or(Path::new(""));
    let mut checked = 0;
    let mut findings = Vec::new();
    for (line, target) in extract_links(text) {
        if !is_local(&target) {
            continue;
        }
        checked += 1;
        let path = target.split('#').next().unwrap_or(&target);
        if path.is_empty() {
            continue; // `file#` degenerates to a self-anchor
        }
        if path.starts_with('/') {
            findings.push(LinkFinding {
                file: rel.to_path_buf(),
                line,
                target,
                why: "is an absolute path — links must be repo-relative".to_string(),
            });
            continue;
        }
        if !normalize(&root.join(dir).join(path)).exists() {
            findings.push(LinkFinding {
                file: rel.to_path_buf(),
                line,
                target,
                why: format!("does not resolve (relative to `{}`)", dir.display()),
            });
        }
    }
    for (line, target) in extract_doc_refs(text) {
        checked += 1;
        if !root.join(&target).is_file() {
            findings.push(LinkFinding {
                file: rel.to_path_buf(),
                line,
                target,
                why: "names a guide that does not exist under docs/".to_string(),
            });
        }
    }
    findings.sort_by(|a, b| a.line.cmp(&b.line).then_with(|| a.target.cmp(&b.target)));
    (checked, findings)
}

/// Run the full doc-link pass over the workspace rooted at `root`.
/// Unreadable files are reported as findings rather than skipped, so a
/// permissions problem can't masquerade as a clean pass.
pub fn check_docs(root: &Path) -> DocLinkReport {
    let mut report = DocLinkReport::default();
    for rel in doc_files(root) {
        report.files += 1;
        let text = match fs::read_to_string(root.join(&rel)) {
            Ok(t) => t,
            Err(e) => {
                report.findings.push(LinkFinding {
                    file: rel,
                    line: 1,
                    target: String::new(),
                    why: format!("unreadable markdown file: {e}"),
                });
                continue;
            }
        };
        let (checked, findings) = check_text(root, &rel, &text);
        report.checked += checked;
        report.findings.extend(findings);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_links_are_extracted_with_lines() {
        let md = "intro\n[a](one.md) and [b](two/three.md#frag)\n";
        let links = extract_links(md);
        assert_eq!(
            links,
            vec![(2, "one.md".to_string()), (2, "two/three.md#frag".to_string())]
        );
    }

    #[test]
    fn external_and_anchor_targets_are_skipped_at_check_time() {
        let md = "[w](https://example.com) [m](mailto:x@y.z) [a](#section)\n";
        let (checked, findings) = check_text(Path::new("/nonexistent"), Path::new("X.md"), md);
        assert_eq!(checked, 0, "external/anchor links are not filesystem checks");
        assert!(findings.is_empty());
    }

    #[test]
    fn code_blocks_and_spans_do_not_produce_links() {
        let md = "```\n[not](a-link.md)\n```\ntext `arr[i](j)` more\n";
        assert!(extract_links(md).is_empty());
    }

    #[test]
    fn fragments_are_stripped_before_resolution() {
        // `Cargo.toml#anything` resolves because Cargo.toml exists.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"));
        let md = "[m](Cargo.toml#section)\n";
        let (checked, findings) = check_text(root, Path::new("X.md"), md);
        assert_eq!(checked, 1);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn broken_links_and_absolute_paths_are_findings() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"));
        let md = "[gone](no/such/file.md)\n[abs](/etc/passwd)\n";
        let (checked, findings) = check_text(root, Path::new("X.md"), md);
        assert_eq!(checked, 2);
        assert_eq!(findings.len(), 2);
        assert!(findings[0].why.contains("does not resolve"));
        assert!(findings[1].why.contains("absolute path"));
    }

    #[test]
    fn doc_refs_are_found_everywhere_and_punctuation_is_trimmed() {
        let md = "See docs/GUIDE.md.\n```rust\n// see docs/OTHER.md\n```\n`docs/SPAN.md`\n";
        let refs = extract_doc_refs(md);
        assert_eq!(
            refs,
            vec![
                (1, "docs/GUIDE.md".to_string()),
                (3, "docs/OTHER.md".to_string()),
                (5, "docs/SPAN.md".to_string()),
            ]
        );
    }

    #[test]
    fn relative_targets_resolve_from_the_containing_file() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"));
        // From a fictional docs/ file, `../Cargo.toml` is this crate's
        // manifest; plain `Cargo.toml` is not (docs/Cargo.toml).
        let (_, ok) = check_text(root, Path::new("docs/X.md"), "[up](../Cargo.toml)\n");
        assert!(ok.is_empty(), "{ok:?}");
        let (_, bad) = check_text(root, Path::new("docs/X.md"), "[here](Cargo.toml)\n");
        assert_eq!(bad.len(), 1);
    }
}
