//! A minimal, line-oriented lexer for Rust source.
//!
//! The lint rules in [`crate::rules`] are lexical: they match identifiers
//! and operators that must never appear in certain crates. For that to be
//! sound we must not match inside string literals, char literals, or
//! comments — `// documentation that mentions HashMap` is not a finding,
//! and neither is `println!("Instant::now")`. This module splits every
//! source line into its *code* text (literals blanked out) and its
//! *comment* text (used to find `// lint: allow(...)` justifications and
//! `// SAFETY:` documentation), and marks which lines belong to test-only
//! regions (`#[cfg(test)] mod … { … }` bodies, `#[test]` functions).
//!
//! The lexer is deliberately dependency-free (no `syn`): the workspace
//! builds against an offline stub registry (docs/OFFLINE_BUILDS.md), so the
//! linter hand-rolls the small subset of Rust lexing it needs. It handles
//! line/block comments (nested), string/raw-string/byte-string literals,
//! char literals vs. lifetimes, and escapes. It does not need to be a full
//! parser: brace counting on code text is enough to delimit test modules.

/// One source line, split into code and comment channels.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// Code text with every string/char literal replaced by `""`/`' '` and
    /// comments removed. Identifier and operator positions are preserved
    /// well enough for column reporting.
    pub code: String,
    /// Concatenated comment text on this line (without `//`/`/*` markers).
    pub comment: String,
    /// True if this line is inside test-only code: a `#[cfg(test)]` module
    /// body, a `#[test]`/`#[cfg(test)]`-attributed item, or a
    /// `#[cfg(miri)]`/`#[cfg(loom)]` region (dynamic-analysis shims).
    pub is_test: bool,
}

/// Lex a whole file into per-line code/comment channels.
pub fn lex(source: &str) -> Vec<Line> {
    let mut lines: Vec<Line> = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();

    #[derive(PartialEq)]
    enum State {
        Normal,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let mut state = State::Normal;

    let bytes: Vec<char> = source.chars().collect();
    let mut i = 0usize;
    let n = bytes.len();
    while i <= n {
        let c = if i < n { bytes[i] } else { '\n' };
        let next = if i + 1 < n { bytes[i + 1] } else { '\0' };
        if c == '\n' {
            if state == State::LineComment {
                state = State::Normal;
            }
            lines.push(Line { code: std::mem::take(&mut code), comment: std::mem::take(&mut comment), is_test: false });
            i += 1;
            if i > n {
                break;
            }
            if i == n {
                break;
            }
            continue;
        }
        match state {
            State::Normal => match c {
                '/' if next == '/' => {
                    state = State::LineComment;
                    i += 2;
                    // Swallow doc-comment markers too (`///`, `//!`).
                    while i < n && (bytes[i] == '/' || bytes[i] == '!') {
                        i += 1;
                    }
                }
                '/' if next == '*' => {
                    state = State::BlockComment(1);
                    i += 2;
                }
                '"' => {
                    code.push_str("\"\"");
                    state = State::Str;
                    i += 1;
                }
                // Plain byte string `b"…"`: escape-processing like `"…"`,
                // NOT raw — `b"\""` must not close at the escaped quote.
                'b' if next == '"' && !is_ident_tail(&bytes, i) => {
                    code.push_str("\"\"");
                    state = State::Str;
                    i += 2;
                }
                'r' | 'b' if is_raw_string_start(&bytes, i) => {
                    let (hashes, consumed) = raw_string_open(&bytes, i);
                    code.push_str("\"\"");
                    state = State::RawStr(hashes);
                    i += consumed;
                }
                // Lifetime (`'a`) vs char literal (`'a'`). A lifetime is
                // `'` + ident-start not followed by a closing quote.
                '\'' if is_char_literal(&bytes, i) => {
                    code.push_str("' '");
                    state = State::Char;
                    i += 1;
                }
                _ => {
                    code.push(c);
                    i += 1;
                }
            },
            State::LineComment => {
                comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && next == '/' {
                    state = if depth == 1 { State::Normal } else { State::BlockComment(depth - 1) };
                    i += 2;
                } else if c == '/' && next == '*' {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    // An escaped newline (multi-line string continuation)
                    // must still terminate the *source line*: consume only
                    // the backslash so the top-of-loop newline handler
                    // pushes the line and keeps line numbers aligned.
                    i += if next == '\n' { 1 } else { 2 };
                } else if c == '"' {
                    state = State::Normal;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && raw_string_closes(&bytes, i, hashes) {
                    state = State::Normal;
                    i += 1 + hashes as usize;
                } else {
                    i += 1;
                }
            }
            State::Char => {
                if c == '\\' {
                    i += 2;
                } else if c == '\'' {
                    state = State::Normal;
                    i += 1;
                } else {
                    i += 1;
                }
            }
        }
    }

    mark_test_regions(&mut lines);
    lines
}

/// True when `bytes[i]` continues an identifier started earlier
/// (`for`, `ptr`, `sub"…` tails must not be mistaken for literal prefixes).
fn is_ident_tail(bytes: &[char], i: usize) -> bool {
    i > 0 && {
        let p = bytes[i - 1];
        p.is_alphanumeric() || p == '_'
    }
}

/// `r"…"`, `r#"…"#`, `br"…"`, `br#"…"#` starts — the genuinely raw
/// (escape-free) forms. Plain `b"…"` is handled as an ordinary string.
/// Called with `bytes[i]` being `r` or `b`.
fn is_raw_string_start(bytes: &[char], i: usize) -> bool {
    if is_ident_tail(bytes, i) {
        return false;
    }
    let mut j = i;
    if bytes[j] == 'b' {
        j += 1;
    }
    if j < bytes.len() && bytes[j] == 'r' {
        j += 1;
        while j < bytes.len() && bytes[j] == '#' {
            j += 1;
        }
        return j < bytes.len() && bytes[j] == '"';
    }
    false
}

/// Returns (number of hashes, chars consumed through the opening quote).
fn raw_string_open(bytes: &[char], i: usize) -> (u32, usize) {
    let mut j = i;
    if bytes[j] == 'b' {
        j += 1;
    }
    if j < bytes.len() && bytes[j] == 'r' {
        j += 1;
    }
    let mut hashes = 0u32;
    while j < bytes.len() && bytes[j] == '#' {
        hashes += 1;
        j += 1;
    }
    // j is at the opening quote
    (hashes, j - i + 1)
}

fn raw_string_closes(bytes: &[char], i: usize, hashes: u32) -> bool {
    (0..hashes as usize).all(|k| bytes.get(i + 1 + k) == Some(&'#'))
}

/// Distinguish `'a'` / `'\n'` (char literal) from `'a` (lifetime) at a `'`.
fn is_char_literal(bytes: &[char], i: usize) -> bool {
    let n = bytes.len();
    if i + 1 >= n {
        return false;
    }
    let c1 = bytes[i + 1];
    if c1 == '\\' {
        return true; // escape can only start a char literal
    }
    // `'x'` → char literal; `'x` followed by anything else → lifetime.
    i + 2 < n && bytes[i + 2] == '\'' && c1 != '\''
}

/// Mark lines that belong to test-only regions.
///
/// Heuristic, but robust for this codebase's idiom: an attribute line whose
/// code contains `#[cfg(test)]`, `#[cfg(miri)]`, `#[cfg(loom)]`, `#[test]`,
/// or `#[cfg_attr(…, test)]` marks the *next item* (through its balanced
/// `{ … }` body, or to the `;` for bodyless items) as test code, along with
/// the attribute line itself.
fn mark_test_regions(lines: &mut [Line]) {
    let n = lines.len();
    let mut i = 0usize;
    while i < n {
        let code = lines[i].code.trim().to_string();
        let is_test_attr = code.contains("#[cfg(test)")
            || code.contains("#[cfg(any(test")
            || code.contains("#[cfg(miri)")
            || code.contains("#[cfg(loom)")
            || code.contains("#[test]")
            || code.contains("#[cfg_attr(test");
        if !is_test_attr {
            i += 1;
            continue;
        }
        lines[i].is_test = true;
        // Walk forward to the item's body: find the first `{` at or after
        // the attribute (skipping further attributes/doc lines), then mark
        // until braces rebalance. A `;` before any `{` ends a bodyless item.
        let mut depth: i64 = 0;
        let mut seen_open = false;
        let mut j = i + 1;
        while j < n {
            lines[j].is_test = true;
            for ch in lines[j].code.chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        seen_open = true;
                    }
                    '}' => depth -= 1,
                    ';' if !seen_open && depth == 0 => {
                        // bodyless item (e.g. `mod foo;`)
                        depth = i64::MIN; // force exit
                    }
                    _ => {}
                }
                if depth == i64::MIN {
                    break;
                }
            }
            if depth == i64::MIN || (seen_open && depth <= 0) {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_stripped() {
        let src = r#"
let x = "HashMap in a string";
// HashMap in a comment
let y = HashMap::new(); // trailing note
"#;
        let lines = lex(src);
        assert!(!lines[1].code.contains("HashMap"));
        assert!(!lines[2].code.contains("HashMap"));
        assert!(lines[2].comment.contains("HashMap"));
        assert!(lines[3].code.contains("HashMap"));
        assert!(lines[3].comment.contains("trailing note"));
    }

    #[test]
    fn raw_strings_and_chars() {
        let src = "let s = r#\"Instant::now\"#;\nlet c = '\\n';\nlet lt: &'static str = \"x\";\n";
        let lines = lex(src);
        assert!(!lines[0].code.contains("Instant"));
        assert!(lines[1].code.contains("' '"));
        assert!(lines[2].code.contains("'static"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let src = "/* outer /* inner */ still comment: thread_rng */\nlet a = 1;\n";
        let lines = lex(src);
        assert!(!lines[0].code.contains("thread_rng"));
        assert!(lines[0].comment.contains("inner"));
        assert!(lines[1].code.contains("let a"));
    }

    #[test]
    fn hashed_raw_strings_span_lines_and_ignore_inner_quotes() {
        // r##"…"## may contain `"#` without closing; the close needs `"##`.
        let src = "let s = r##\"line one \"# HashMap\nline two Instant::now\"##;\nlet x = HashMap::new();\n";
        let lines = lex(src);
        assert!(!lines[0].code.contains("HashMap"), "inside raw string");
        assert!(!lines[1].code.contains("Instant"), "raw string spans lines");
        assert!(lines[2].code.contains("HashMap"), "code after the close is live");
        assert_eq!(lines.len(), 3, "line structure preserved across the literal");
    }

    #[test]
    fn byte_strings_process_escapes() {
        // Regression: `b"\""` is escape-processed, not raw — the escaped
        // quote must not close the literal and leak the tail into code.
        let src = "let b = b\"quote \\\" HashMap\";\nlet c = br\"raw HashSet\";\nlet d = HashMap::new();\n";
        let lines = lex(src);
        assert!(!lines[0].code.contains("HashMap"), "escaped quote must not close b\"…\"");
        assert!(!lines[1].code.contains("HashSet"), "br\"…\" stays raw");
        assert!(lines[2].code.contains("HashMap"));
    }

    #[test]
    fn deeply_nested_block_comments() {
        let src = "/* a /* b /* c */ still */ still */ let live = thread_rng();\n";
        let lines = lex(src);
        assert!(lines[0].code.contains("thread_rng"), "code after triple-nested close is live");
        assert!(lines[0].comment.contains('c'));
        let src = "/* a /* b */ still comment thread_rng */\nlet x = 1;\n";
        let lines = lex(src);
        assert!(!lines[0].code.contains("thread_rng"));
        assert!(lines[1].code.contains("let x"));
    }

    #[test]
    fn escaped_newline_in_string_keeps_line_numbers() {
        // A trailing backslash continues the string on the next line; the
        // lexer must still emit one `Line` per source line so diagnostics
        // after the literal point at the right place.
        let src = "let s = \"first \\\nsecond\";\nlet t = HashMap::new();\n";
        let lines = lex(src);
        assert_eq!(lines.len(), 3, "one Line per source line");
        assert!(!lines[1].code.contains("second"), "continuation is string text");
        assert!(lines[2].code.contains("HashMap"), "line 3 still maps to source line 3");
    }

    #[test]
    fn identifier_tails_are_not_literal_prefixes() {
        let src = "let ptr = subr\"x\";\nlet abcb = 1;\n";
        let lines = lex(src);
        // `subr` ends in `r` but is an identifier; the quote then opens a
        // plain string.
        assert!(lines[0].code.contains("subr"));
        assert!(lines[1].code.contains("abcb"));
    }

    #[test]
    fn cfg_test_module_is_marked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn lib2() {}\n";
        let lines = lex(src);
        assert!(!lines[0].is_test);
        assert!(lines[1].is_test && lines[2].is_test && lines[3].is_test && lines[4].is_test);
        assert!(!lines[5].is_test);
    }

    #[test]
    fn test_attr_fn_is_marked() {
        let src = "#[test]\nfn check() {\n    body();\n}\nfn lib() {}\n";
        let lines = lex(src);
        assert!(lines[0].is_test && lines[1].is_test && lines[2].is_test && lines[3].is_test);
        assert!(!lines[4].is_test);
    }
}
