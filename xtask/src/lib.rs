//! besst-lint: repo-specific determinism & soundness static analysis.
//!
//! The library half of the `xtask` crate, exposed so the fixture tests
//! under `tests/` can drive the rule engine directly. See
//! `docs/STATIC_ANALYSIS.md` for the rule catalog (D1–D6), the
//! `// lint: allow(<key>) -- <reason>` justification syntax, and how this
//! pass fits with the dynamic-analysis jobs (Miri, ThreadSanitizer, loom).

#![warn(missing_docs)]

pub mod bench;
pub mod doclinks;
pub mod lexer;
pub mod rules;
pub mod workspace;

use rules::{FileContext, Finding};
use std::path::Path;

/// Lint every source file in the workspace rooted at `root`.
///
/// Returns all findings in deterministic (path, line) order. Unreadable
/// files are reported as findings rather than silently skipped, so a
/// permissions problem can't masquerade as a clean pass.
pub fn lint_workspace(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in workspace::source_files(root) {
        let abs = root.join(&file.path);
        let source = match std::fs::read_to_string(&abs) {
            Ok(s) => s,
            Err(e) => {
                findings.push(Finding {
                    rule: rules::Rule::PanicPath,
                    file: file.path.clone(),
                    line: 1,
                    col: 1,
                    what: format!("unreadable source file: {e}"),
                    hint: "fix permissions or remove the file from the tree".to_string(),
                });
                continue;
            }
        };
        let ctx = FileContext {
            crate_name: file.crate_name,
            kind: file.kind,
            has_typed_errors: file.has_typed_errors,
            path: file.path,
        };
        findings.extend(rules::lint_source(&ctx, &source));
    }
    findings
}
