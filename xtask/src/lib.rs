//! besst-lint: repo-specific determinism & soundness static analysis.
//!
//! The library half of the `xtask` crate, exposed so the fixture tests
//! under `tests/` can drive the rule engine directly. See
//! `docs/STATIC_ANALYSIS.md` for the rule catalog (D1–D9 plus the
//! stale-allow audit), the `// lint: allow(<key>) -- <reason>`
//! justification syntax, the call-graph construction behind D7/D9, the
//! `--format json` schema, and how this pass fits with the
//! dynamic-analysis jobs (Miri, ThreadSanitizer, loom).

#![warn(missing_docs)]

pub mod bench;
pub mod callgraph;
pub mod doclinks;
pub mod lexer;
pub mod rules;
pub mod workspace;

use rules::{FileContext, Finding, SiteStatus};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// An internal linter failure — *not* a finding. CI distinguishes the two
/// by exit code: findings exit 1, a broken linter exits 2 (see
/// [`lint_exit_code`]), so a dirty tree can never masquerade as a crashed
/// tool or vice versa.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LintError {
    /// A source file exists in the walk but could not be read.
    Io {
        /// The unreadable path.
        path: PathBuf,
        /// The OS error text.
        detail: String,
    },
    /// Workspace/member manifest discovery failed.
    Manifest(String),
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Io { path, detail } => {
                write!(f, "unreadable source file {}: {detail}", path.display())
            }
            LintError::Manifest(msg) => write!(f, "workspace discovery failed: {msg}"),
        }
    }
}

impl std::error::Error for LintError {}

/// Everything one workspace pass produces: the findings, plus the D9
/// fault-site audit table (also useful to tests proving catalog health).
#[derive(Debug)]
pub struct WorkspaceAnalysis {
    /// All findings, sorted by (file, line, col, rule code).
    pub findings: Vec<Finding>,
    /// Per-site status from the D9 audit (empty when the workspace has no
    /// `crates/des/src/buggify.rs` — fixture workspaces in tests).
    pub sites: Vec<SiteStatus>,
}

/// The fault-site catalog file D9 audits.
const SITE_CATALOG_PATH: &str = "crates/des/src/buggify.rs";

/// Run the full analysis over the workspace rooted at `root`: per-line
/// rules (D1–D6, D8) per file, the call-graph rules (D7, D9) across the
/// workspace, then the stale-allow audit over every justification comment.
pub fn analyze_workspace(root: &Path) -> Result<WorkspaceAnalysis, LintError> {
    let members = workspace::try_members(root).map_err(LintError::Manifest)?;
    let member_names: Vec<&str> = members.iter().map(|m| m.name.as_str()).collect();
    let deps: BTreeMap<String, Vec<String>> = members
        .iter()
        .map(|m| {
            let ds = m
                .deps
                .iter()
                .filter(|d| member_names.contains(&d.as_str()))
                .cloned()
                .collect();
            (m.name.clone(), ds)
        })
        .collect();

    let mut findings = Vec::new();
    let mut facts = Vec::new();
    let mut allow_tables: Vec<(PathBuf, Vec<rules::AllowSite>)> = Vec::new();
    let mut catalog = None;

    for file in workspace::source_files(root) {
        let abs = root.join(&file.path);
        let source = std::fs::read_to_string(&abs)
            .map_err(|e| LintError::Io { path: file.path.clone(), detail: e.to_string() })?;
        let ctx = FileContext {
            crate_name: file.crate_name,
            kind: file.kind,
            has_typed_errors: file.has_typed_errors,
            path: file.path,
        };
        let lines = lexer::lex(&source);
        let analysis = rules::analyze_lines(&ctx, &lines);
        findings.extend(analysis.findings);
        let file_facts = callgraph::scan_file(&ctx, &lines);
        if ctx.path == Path::new(SITE_CATALOG_PATH) {
            catalog = Some(callgraph::parse_site_catalog(&lines, &file_facts));
        }
        facts.push(file_facts);
        allow_tables.push((ctx.path, analysis.allows));
    }

    let graph = callgraph::CallGraph::build(facts, &deps);
    let (d7, used7) = rules::check_sim_reach(&graph);
    findings.extend(d7);
    let mut sites = Vec::new();
    let mut used9 = Vec::new();
    if let Some(cat) = catalog {
        let (d9, statuses, used) =
            rules::check_site_coverage(&graph, &cat, Path::new(SITE_CATALOG_PATH));
        findings.extend(d9);
        sites = statuses;
        used9 = used;
    }

    // Mark workspace-level allow uses, then audit what is left.
    for (path, line, key) in used7
        .iter()
        .map(|(p, l)| (p, l, "sim-reach"))
        .chain(used9.iter().map(|(p, l)| (p, l, "site-coverage")))
    {
        for (p, allows) in allow_tables.iter_mut() {
            if p != path {
                continue;
            }
            for a in allows.iter_mut() {
                if a.line == line + 1 && a.key == key {
                    a.used = true;
                }
            }
        }
    }
    for (path, allows) in &allow_tables {
        findings.extend(rules::stale_allow_findings(path, allows));
    }

    findings.sort_by(|a, b| {
        (&a.file, a.line, a.col, a.rule.code()).cmp(&(&b.file, b.line, b.col, b.rule.code()))
    });
    Ok(WorkspaceAnalysis { findings, sites })
}

/// Lint every source file in the workspace rooted at `root`.
///
/// Returns all findings in deterministic (path, line, col, rule) order,
/// or a [`LintError`] when the linter itself could not do its job.
pub fn lint_workspace(root: &Path) -> Result<Vec<Finding>, LintError> {
    analyze_workspace(root).map(|a| a.findings)
}

/// The process exit code for a lint outcome: 0 clean, 1 findings, 2
/// internal error.
pub fn lint_exit_code(outcome: &Result<Vec<Finding>, LintError>) -> u8 {
    match outcome {
        Ok(f) if f.is_empty() => 0,
        Ok(_) => 1,
        Err(_) => 2,
    }
}

/// Render findings as the `besst-lint-json-v1` document (hand-rolled, like
/// `bench-json` — the offline stub registry has no serde_json). The output
/// is a pure function of the findings: keys in fixed order, `by_rule`
/// sorted by rule code, findings pre-sorted by the caller — byte-identical
/// across runs by construction, which the CI diff gate verifies.
pub fn findings_to_json(findings: &[Finding]) -> String {
    let mut by_rule: BTreeMap<&str, usize> = BTreeMap::new();
    for f in findings {
        *by_rule.entry(f.rule.code()).or_insert(0) += 1;
    }
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"besst-lint-json-v1\",\n");
    out.push_str("  \"rules\": [");
    for (i, r) in rules::Rule::ALL.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\"", r.code()));
    }
    out.push_str("],\n");
    out.push_str(&format!("  \"total\": {},\n", findings.len()));
    out.push_str("  \"by_rule\": {");
    for (i, (code, n)) in by_rule.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    \"{code}\": {n}"));
    }
    if !by_rule.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("},\n");
    out.push_str("  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\n");
        out.push_str(&format!("      \"rule\": \"{}\",\n", f.rule.code()));
        out.push_str(&format!(
            "      \"file\": \"{}\",\n",
            json_escape(&f.file.to_string_lossy())
        ));
        out.push_str(&format!("      \"line\": {},\n", f.line));
        out.push_str(&format!("      \"col\": {},\n", f.col));
        out.push_str(&format!("      \"what\": \"{}\",\n", json_escape(&f.what)));
        out.push_str(&format!("      \"hint\": \"{}\"\n", json_escape(&f.hint)));
        out.push_str("    }");
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n");
    out.push_str("}\n");
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
