//! `cargo run -p xtask -- lint` — run the besst-lint pass over the
//! workspace and exit nonzero on any finding. `cargo xtask lint` works too
//! if you add the usual `[alias]` to `.cargo/config.toml`.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: cargo run -p xtask -- <command>\n\
         commands:\n\
         \u{20} lint [--root <dir>]   determinism/soundness lint (D1–D5); exits 1 on findings\n\
         see docs/STATIC_ANALYSIS.md for the rule catalog"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let root = match args.iter().position(|a| a == "--root") {
                Some(i) => match args.get(i + 1) {
                    Some(p) => PathBuf::from(p),
                    None => return usage(),
                },
                None => {
                    let start = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
                    match xtask::workspace::find_root(&start) {
                        Some(r) => r,
                        None => {
                            eprintln!("error: no workspace root found above {}", start.display());
                            return ExitCode::FAILURE;
                        }
                    }
                }
            };
            let findings = xtask::lint_workspace(&root);
            for f in &findings {
                println!("{f}\n");
            }
            if findings.is_empty() {
                eprintln!("besst-lint: clean (rules D1–D5, workspace {})", root.display());
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "besst-lint: {} finding{} — see docs/STATIC_ANALYSIS.md for the rules \
                     and the `// lint: allow(<key>) -- <reason>` justification syntax",
                    findings.len(),
                    if findings.len() == 1 { "" } else { "s" }
                );
                ExitCode::FAILURE
            }
        }
        _ => usage(),
    }
}
