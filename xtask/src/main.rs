//! `cargo run -p xtask -- lint` — run the besst-lint pass over the
//! workspace and exit nonzero on any finding. `cargo xtask lint` works too
//! if you add the usual `[alias]` to `.cargo/config.toml`.
//!
//! `cargo run --release -p xtask -- bench-json` — run the pinned-seed
//! benchmark suite and emit the `results/BENCH_*.json` report (see
//! docs/PERFORMANCE.md).
//!
//! `cargo run -p xtask -- doc-links` — verify every relative link and
//! `docs/*.md` cross-reference in the repo's markdown resolves (see
//! docs/README.md for the guide index this protects).

use std::alloc::{GlobalAlloc, Layout, System};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::Ordering;

/// The system allocator with a call counter, feeding the `allocations`
/// fields of the bench-json report. Installed only in this binary so the
/// counter never contaminates test harnesses linking the xtask library.
struct CountingAlloc;

// SAFETY: delegates allocation and deallocation verbatim to `System`,
// which upholds the `GlobalAlloc` contract; the counter update has no
// effect on the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: same contract as `System::alloc`; the counter bumps are the
    // only addition and they cannot affect the returned allocation.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        xtask::bench::ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        xtask::bench::ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        // SAFETY: `layout` is the caller's layout, passed through unchanged.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: same contract as `System::dealloc`, forwarded verbatim.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        xtask::bench::FREED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        // SAFETY: `ptr` was produced by `self.alloc` (i.e. by `System`)
        // with the same `layout`, as the `GlobalAlloc` contract requires.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn usage() -> ExitCode {
    eprintln!(
        "usage: cargo run -p xtask -- <command>\n\
         commands:\n\
         \u{20} lint [--root <dir>] [--format text|json] [--only <rule>]\n\
         \u{20}                              determinism/soundness lint (D1–D9 + stale-allow audit);\n\
         \u{20}                              exits 1 on findings, 2 on internal errors; --only filters\n\
         \u{20}                              by rule code or allow key (e.g. stale-allow)\n\
         \u{20} doc-links [--root <dir>]     markdown link checker over README/DESIGN/docs; exits 1\n\
         \u{20}                              on broken links or dangling docs/*.md cross-references\n\
         \u{20} bench-json [--out <file>] [--miniature]\n\
         \u{20}                              pinned-seed benchmark suite; writes the JSON report\n\
         \u{20}                              to --out (default stdout); --miniature runs the\n\
         \u{20}                              seconds-scale test configuration\n\
         \u{20} mem-gate [--quick]           per-component memory regression gate: flat-store\n\
         \u{20}                              substrate builds from 64k to 1M components must stay\n\
         \u{20}                              within +/-10% bytes/component; --quick runs 1k-4k\n\
         see docs/STATIC_ANALYSIS.md for the lint catalog and\n\
         docs/PERFORMANCE.md for the bench-json schema"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let root = match args.iter().position(|a| a == "--root") {
                Some(i) => match args.get(i + 1) {
                    Some(p) => PathBuf::from(p),
                    None => return usage(),
                },
                None => {
                    let start = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
                    match xtask::workspace::find_root(&start) {
                        Some(r) => r,
                        None => {
                            eprintln!("error: no workspace root found above {}", start.display());
                            return ExitCode::FAILURE;
                        }
                    }
                }
            };
            let json = match args.iter().position(|a| a == "--format") {
                Some(i) => match args.get(i + 1).map(String::as_str) {
                    Some("json") => true,
                    Some("text") => false,
                    _ => return usage(),
                },
                None => false,
            };
            let only: Option<String> = match args.iter().position(|a| a == "--only") {
                Some(i) => match args.get(i + 1) {
                    Some(k) => Some(k.clone()),
                    None => return usage(),
                },
                None => None,
            };
            let mut outcome = xtask::lint_workspace(&root);
            if let (Ok(findings), Some(key)) = (&mut outcome, &only) {
                findings.retain(|f| f.rule.code() == key || f.rule.allow_key() == key.as_str());
            }
            let code = xtask::lint_exit_code(&outcome);
            match &outcome {
                Err(e) => eprintln!("besst-lint: internal error: {e}"),
                Ok(findings) if json => {
                    print!("{}", xtask::findings_to_json(findings));
                    eprintln!(
                        "besst-lint: {} finding{} (JSON on stdout, schema besst-lint-json-v1)",
                        findings.len(),
                        if findings.len() == 1 { "" } else { "s" }
                    );
                }
                Ok(findings) => {
                    for f in findings {
                        println!("{f}\n");
                    }
                    if findings.is_empty() {
                        eprintln!(
                            "besst-lint: clean (rules D1–D9 + stale-allow audit, workspace {})",
                            root.display()
                        );
                    } else {
                        eprintln!(
                            "besst-lint: {} finding{} — see docs/STATIC_ANALYSIS.md for the rules \
                             and the `// lint: allow(<key>) -- <reason>` justification syntax",
                            findings.len(),
                            if findings.len() == 1 { "" } else { "s" }
                        );
                    }
                }
            }
            ExitCode::from(code)
        }
        Some("doc-links") => {
            let root = match args.iter().position(|a| a == "--root") {
                Some(i) => match args.get(i + 1) {
                    Some(p) => PathBuf::from(p),
                    None => return usage(),
                },
                None => {
                    let start = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
                    match xtask::workspace::find_root(&start) {
                        Some(r) => r,
                        None => {
                            eprintln!("error: no workspace root found above {}", start.display());
                            return ExitCode::FAILURE;
                        }
                    }
                }
            };
            let report = xtask::doclinks::check_docs(&root);
            for f in &report.findings {
                println!("{f}\n");
            }
            if report.findings.is_empty() {
                eprintln!(
                    "doc-links: clean ({} references across {} markdown files)",
                    report.checked, report.files
                );
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "doc-links: {} broken reference{} — fix the link or the file it promises",
                    report.findings.len(),
                    if report.findings.len() == 1 { "" } else { "s" }
                );
                ExitCode::FAILURE
            }
        }
        Some("mem-gate") => {
            let exponents: Vec<u32> =
                if args.iter().any(|a| a == "--quick") { vec![10, 12] } else { vec![16, 18, 20] };
            match xtask::bench::mem_gate(&exponents, 0.10) {
                Ok(text) => {
                    eprintln!("{text}\nmem-gate: OK");
                    ExitCode::SUCCESS
                }
                Err(text) => {
                    eprintln!("{text}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("bench-json") => {
            let params = if args.iter().any(|a| a == "--miniature") {
                xtask::bench::BenchParams::miniature()
            } else {
                xtask::bench::BenchParams::full()
            };
            let report = xtask::bench::run(&params);
            match args.iter().position(|a| a == "--out") {
                Some(i) => match args.get(i + 1) {
                    Some(path) => {
                        if let Err(e) = std::fs::write(path, &report) {
                            eprintln!("error: cannot write {path}: {e}");
                            return ExitCode::FAILURE;
                        }
                        eprintln!("bench-json: wrote {path}");
                    }
                    None => return usage(),
                },
                None => print!("{report}"),
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
