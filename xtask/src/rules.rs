//! The besst-lint rule catalog.
//!
//! Nine repo-specific determinism/soundness rules plus the stale-allow
//! audit (see `docs/STATIC_ANALYSIS.md` for the rationale and the
//! allow-list syntax):
//!
//! * **D1 `hash-order`** — no `std::collections::HashMap`/`HashSet` in
//!   simulation-path crates. Hash iteration order is randomized per
//!   process, so any observable state that flows through it breaks the
//!   repo's bit-identity guarantees. Use `BTreeMap`/`BTreeSet` (or a
//!   sorted `Vec`); justify exceptions with `// lint: allow(hash-order)`.
//! * **D2 `nondet`** — no ambient nondeterminism (`thread_rng`,
//!   `SystemTime::now`, `Instant::now`, `from_entropy`, `rand::random`)
//!   outside the `bench`/`experiments` crates. All randomness must be
//!   seeded (`SplitMix64`, `seed_from_u64`) and all time simulated.
//! * **D3 `panic-path`** — no `panic!`/`.unwrap()`/`.expect(` in non-test
//!   code of library crates that already expose typed errors (detected by
//!   a `pub enum *Error` in the crate): return the typed error instead.
//! * **D4 `undocumented-unsafe`** — every `unsafe` keyword must carry a
//!   `// SAFETY:` comment on the same or one of the preceding lines.
//! * **D5 `float-cmp`** — no float equality (`==`/`!=` next to
//!   `as_secs_f64`/`as_micros_f64`/`_f64` time accessors) and no
//!   `partial_cmp` in simulation-path crates outside `besst_des::time`:
//!   compare `SimTime` (integer ns) or use `f64::total_cmp`, which is
//!   total, deterministic, and panic-free.
//! * **D6 `unbounded-wait`** — no unbounded blocking reads
//!   (`read_to_end`/`read_to_string`/`read_line`) or unbounded channel
//!   growth (`unbounded`) in serving-path crates: a client that streams
//!   an endless line or never drains must hit a typed limit
//!   (`MAX_LINE_BYTES`, a bounded queue), not exhaust memory.
//! * **D7 `sim-reach`** — interprocedural: no function *transitively
//!   reachable* from the engines' event-dispatch entry points
//!   (`Engine::run`, `ParallelEngine::run`, every `on_event`/`on_start`
//!   implementation) may use a D1/D2-banned API, in any crate. This
//!   closes the laundering hole where a helper crate off the sim path
//!   hides a `HashMap` or `Instant::now` behind one call. Built on the
//!   conservative name-based call graph in [`crate::callgraph`].
//! * **D8 `error-swallow`** — no `let _ = …(…)` or statement-position
//!   `.ok();` discarding a `Result` in non-test library code of
//!   typed-error crates: a swallowed error is an invisible fault, which
//!   is the one thing a fault-tolerance simulator cannot tolerate.
//! * **D9 `site-coverage`** — every fault-site constant in
//!   `besst_des::buggify::sites` must be registered in `sites::ALL`,
//!   hooked by at least one call site reachable from the engines or the
//!   scenario server, and exercised by at least one `FaultPreset`.
//!   Unregistered, dead, and preset-orphaned sites are findings.
//! * **A1 `stale-allow`** — a `// lint: allow(…)` that no longer
//!   suppresses any finding (or names an unknown key) is itself a
//!   finding, so suppression debt cannot rot in place.
//!
//! Allow-list syntax: `// lint: allow(<key>) -- <reason>` on the flagged
//! line or the comment block directly above it. The reason is mandatory
//! by convention and reviewed like a `// SAFETY:` comment.

use crate::callgraph::{CallGraph, SiteCatalog};
use crate::lexer::{lex, Line};
use crate::workspace::CrateKind;
use std::fmt;
use std::path::{Path, PathBuf};

/// Crates whose code is on the simulation path: anything that can affect a
/// simulated trajectory, and therefore the DST bit-identity suite.
pub const SIM_PATH_CRATES: &[&str] = &[
    "besst-des",
    "besst-core",
    "besst-fti",
    "besst-abft",
    "besst-machine",
    "besst-models",
    "besst-apps",
];

/// Crates where ambient nondeterminism is tolerated (wall-clock timing of
/// campaigns, benchmark harnesses, and the scenario server — deadlines,
/// backoff and batch budgets are wall-clock by contract; the *simulated*
/// answers it serves stay seed-deterministic). Everything else must be
/// deterministic. D7 still polices these crates' functions when they are
/// reachable from engine dispatch.
pub const NONDET_OK_CRATES: &[&str] = &["besst-bench", "besst-experiments", "xtask", "besst-serve"];

/// Crates that serve untrusted byte streams and therefore must bound
/// every read and queue (rule D6). Today: the scenario server.
pub const BOUNDED_IO_CRATES: &[&str] = &["besst-serve"];

/// One lint rule's identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// D1: hash-ordered collections in simulation-path crates.
    HashOrder,
    /// D2: ambient nondeterminism outside bench/experiments.
    Nondet,
    /// D3: panic paths in typed-error library crates.
    PanicPath,
    /// D4: `unsafe` without a `// SAFETY:` comment.
    UndocumentedUnsafe,
    /// D5: float comparison on timestamps / `partial_cmp` on sim paths.
    FloatCmp,
    /// D6: unbounded blocking reads / channel growth in serving-path
    /// crates.
    UnboundedWait,
    /// D7: D1/D2-banned APIs reachable from engine event dispatch.
    SimReach,
    /// D8: discarded `Result`s in typed-error library code.
    ErrorSwallow,
    /// D9: fault sites missing registration, hooks, or preset coverage.
    SiteCoverage,
    /// A1: `// lint: allow(…)` that suppresses nothing.
    StaleAllow,
}

impl Rule {
    /// Every rule, in catalog order (the order of the JSON `rules` array).
    pub const ALL: [Rule; 10] = [
        Rule::HashOrder,
        Rule::Nondet,
        Rule::PanicPath,
        Rule::UndocumentedUnsafe,
        Rule::FloatCmp,
        Rule::UnboundedWait,
        Rule::SimReach,
        Rule::ErrorSwallow,
        Rule::SiteCoverage,
        Rule::StaleAllow,
    ];

    /// Diagnostic code, e.g. `D1/hash-order`.
    pub fn code(self) -> &'static str {
        match self {
            Rule::HashOrder => "D1/hash-order",
            Rule::Nondet => "D2/nondet",
            Rule::PanicPath => "D3/panic-path",
            Rule::UndocumentedUnsafe => "D4/undocumented-unsafe",
            Rule::FloatCmp => "D5/float-cmp",
            Rule::UnboundedWait => "D6/unbounded-wait",
            Rule::SimReach => "D7/sim-reach",
            Rule::ErrorSwallow => "D8/error-swallow",
            Rule::SiteCoverage => "D9/site-coverage",
            Rule::StaleAllow => "A1/stale-allow",
        }
    }

    /// Key accepted by `// lint: allow(<key>)`. The stale-allow audit has
    /// no allow key of its own — it is resolved by deleting the stale
    /// comment, not by justifying it.
    pub fn allow_key(self) -> &'static str {
        match self {
            Rule::HashOrder => "hash-order",
            Rule::Nondet => "nondet",
            Rule::PanicPath => "panic-path",
            Rule::UndocumentedUnsafe => "undocumented-unsafe",
            Rule::FloatCmp => "float-cmp",
            Rule::UnboundedWait => "unbounded-wait",
            Rule::SimReach => "sim-reach",
            Rule::ErrorSwallow => "error-swallow",
            Rule::SiteCoverage => "site-coverage",
            Rule::StaleAllow => "stale-allow",
        }
    }
}

/// Allow keys the audit accepts: one per rule D1–D9.
pub const KNOWN_ALLOW_KEYS: &[&str] = &[
    "hash-order",
    "nondet",
    "panic-path",
    "undocumented-unsafe",
    "float-cmp",
    "unbounded-wait",
    "sim-reach",
    "error-swallow",
    "site-coverage",
];

/// A single diagnostic: rule, location, matched text, fix hint.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// File the finding is in.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column of the match start.
    pub col: usize,
    /// What the rule matched (for the message).
    pub what: String,
    /// One-line fix suggestion.
    pub hint: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "error[{}]: {}",
            self.rule.code(),
            self.what
        )?;
        writeln!(f, "  --> {}:{}:{}", self.file.display(), self.line, self.col)?;
        write!(f, "  hint: {}", self.hint)
    }
}

/// One canonical `// lint: allow(<key>) -- <reason>` comment, with its
/// usage state. "Canonical" means a line comment whose text *starts with*
/// `lint: allow(` — prose that merely mentions the syntax (rustdoc, the
/// hint strings) is not an allow site and is not audited.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowSite {
    /// 1-based line of the comment.
    pub line: usize,
    /// The key inside the parentheses.
    pub key: String,
    /// Set once some rule was suppressed by this site.
    pub used: bool,
}

/// Per-file lint context: which crate the file belongs to and what kind of
/// target it is.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Package name from the owning crate's `Cargo.toml`.
    pub crate_name: String,
    /// Library source vs. test/bench/example target.
    pub kind: CrateKind,
    /// True when the owning crate defines a `pub enum *Error` (enables
    /// D3/D8).
    pub has_typed_errors: bool,
    /// Path as reported in diagnostics (workspace-relative).
    pub path: PathBuf,
}

impl FileContext {
    fn sim_path(&self) -> bool {
        SIM_PATH_CRATES.contains(&self.crate_name.as_str())
    }
    fn bounded_io(&self) -> bool {
        BOUNDED_IO_CRATES.contains(&self.crate_name.as_str())
    }
    fn nondet_ok(&self) -> bool {
        NONDET_OK_CRATES.contains(&self.crate_name.as_str())
    }
    /// `besst_des::time` is the one module allowed to convert/compare
    /// float time (it owns the float↔integer boundary).
    fn is_time_module(&self) -> bool {
        self.crate_name == "besst-des" && self.path.ends_with("src/time.rs")
    }
}

/// Find the 0-based line carrying marker `needle`: line `i` itself, or the
/// contiguous comment-only block directly above it. Multi-line
/// justifications are idiomatic, so the search walks upward while lines
/// are comment-only.
pub(crate) fn marked_line(lines: &[Line], i: usize, needle: &str) -> Option<usize> {
    if lines[i].comment.contains(needle) {
        return Some(i);
    }
    let mut j = i;
    while j > 0 {
        j -= 1;
        let l = &lines[j];
        let comment_only = !l.comment.is_empty() && l.code.trim().is_empty();
        if comment_only {
            if l.comment.contains(needle) {
                return Some(j);
            }
        } else {
            break;
        }
    }
    None
}

/// The 0-based line of a `// lint: allow(<key>)` covering line `i`, if any.
pub(crate) fn find_allow_line(lines: &[Line], i: usize, key: &str) -> Option<usize> {
    marked_line(lines, i, &format!("lint: allow({key})"))
}

/// Does line `i` (or the comment block above) carry a `SAFETY:` comment?
fn has_safety_comment(lines: &[Line], i: usize) -> bool {
    marked_line(lines, i, "SAFETY:").is_some()
}

/// Match `needle` in `hay` only at identifier boundaries, returning the
/// 0-based byte offset of the first such match.
fn find_word(hay: &str, needle: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(rel) = hay[from..].find(needle) {
        let at = from + rel;
        let before_ok = at == 0
            || !hay[..at].chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_');
        let end = at + needle.len();
        let after_ok = end >= hay.len()
            || !hay[end..].chars().next().is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return Some(at);
        }
        from = end;
    }
    None
}

/// Collect every canonical allow site in the file.
fn scan_allows(lines: &[Line]) -> Vec<AllowSite> {
    let mut out = Vec::new();
    for (i, l) in lines.iter().enumerate() {
        let t = l.comment.trim_start();
        if let Some(rest) = t.strip_prefix("lint: allow(") {
            if let Some(end) = rest.find(')') {
                out.push(AllowSite { line: i + 1, key: rest[..end].to_string(), used: false });
            }
        }
    }
    out
}

/// The per-line half of one file's analysis.
#[derive(Debug)]
pub struct FileAnalysis {
    /// Findings from the per-line rules (D1–D6, D8).
    pub findings: Vec<Finding>,
    /// Every canonical allow site, with `used` reflecting the per-line
    /// rules only — the workspace pass ([`check_sim_reach`],
    /// [`check_site_coverage`]) marks its own uses before the stale audit
    /// runs.
    pub allows: Vec<AllowSite>,
}

/// Run the per-line rules over one lexed file. A matched pattern first
/// looks for its covering allow (marking it used), then reports.
pub fn analyze_lines(ctx: &FileContext, lines: &[Line]) -> FileAnalysis {
    let mut allows = scan_allows(lines);
    let mut findings = Vec::new();
    // A matched pattern either consumes a covering allow (marking it used)
    // or produces a finding.
    macro_rules! emit {
        ($rule:expr, $i:expr, $col:expr, $what:expr, $hint:expr) => {{
            let rule: Rule = $rule;
            let i: usize = $i;
            match find_allow_line(lines, i, rule.allow_key()) {
                Some(j) => {
                    for a in allows.iter_mut() {
                        if a.line == j + 1 && a.key == rule.allow_key() {
                            a.used = true;
                        }
                    }
                }
                None => findings.push(Finding {
                    rule,
                    file: ctx.path.clone(),
                    line: i + 1,
                    col: $col + 1,
                    what: $what,
                    hint: $hint,
                }),
            }
        }};
    }

    for (i, line) in lines.iter().enumerate() {
        let code = line.code.as_str();
        if code.is_empty() {
            continue;
        }

        // D1 — hash-ordered collections on the simulation path. Applies to
        // test code too: a hash-ordered test harness is a flaky test.
        if ctx.sim_path() {
            for name in ["HashMap", "HashSet"] {
                if let Some(col) = find_word(code, name) {
                    emit!(
                        Rule::HashOrder,
                        i,
                        col,
                        format!("`{name}` in simulation-path crate `{}`: iteration order is per-process random and breaks bit-identity", ctx.crate_name),
                        "use `BTreeMap`/`BTreeSet` (deterministic order) or justify with `// lint: allow(hash-order) -- <reason>`".to_string()
                    );
                }
            }
        }

        // D2 — ambient nondeterminism. Everywhere except bench/experiments;
        // test code included (DST replays require deterministic tests).
        if !ctx.nondet_ok() {
            for pat in ["thread_rng", "SystemTime::now", "Instant::now", "from_entropy", "rand::random"] {
                if let Some(col) = find_word(code, pat) {
                    emit!(
                        Rule::Nondet,
                        i,
                        col,
                        format!("ambient nondeterminism `{pat}` in crate `{}`", ctx.crate_name),
                        "seed explicitly (`SplitMix64::new(seed)`, `seed_from_u64`) or use `SimTime`; wall-clock timing belongs in `bench`/`experiments`".to_string()
                    );
                }
            }
        }

        // D3 — panic paths where a typed error already exists. Library
        // (non-test) code only; doc examples and tests may unwrap.
        if ctx.has_typed_errors && ctx.kind == CrateKind::Lib && !line.is_test {
            for pat in [".unwrap()", ".expect(", "panic!("] {
                if let Some(col) = code.find(pat) {
                    emit!(
                        Rule::PanicPath,
                        i,
                        col,
                        format!("panic path `{}` in `{}`, which has typed errors", pat.trim_end_matches('('), ctx.crate_name),
                        "return the crate's typed error (`RecoveryError` precedent) or justify with `// lint: allow(panic-path) -- <invariant>`".to_string()
                    );
                }
            }
        }

        // D4 — undocumented `unsafe`. Everywhere, tests included.
        if let Some(col) = find_word(code, "unsafe") {
            // `unsafe_op_in_unsafe_fn`-style idents are handled by
            // find_word's boundary check; attribute spellings like
            // `#![deny(unsafe_op_in_unsafe_fn)]` never match the bare word.
            if !has_safety_comment(lines, i) {
                emit!(
                    Rule::UndocumentedUnsafe,
                    i,
                    col,
                    "`unsafe` without a `// SAFETY:` comment".to_string(),
                    "document the invariant that makes this sound (`// SAFETY: …`) on the line above, or remove the `unsafe`".to_string()
                );
            }
        }

        // D5 — float comparison on timestamps; `partial_cmp` on sim paths.
        if ctx.sim_path() && !ctx.is_time_module() {
            let float_time = ["as_secs_f64", "as_micros_f64", "elapsed_s", "makespan_s"]
                .iter()
                .any(|p| code.contains(p));
            if float_time && (code.contains("==") || code.contains("!=") || code.contains("assert_eq!")) {
                let col = code.find("==").or_else(|| code.find("!=")).unwrap_or(0);
                emit!(
                    Rule::FloatCmp,
                    i,
                    col,
                    "float equality on a timestamp".to_string(),
                    "compare `SimTime` (integer nanoseconds) instead, or use an explicit tolerance".to_string()
                );
            }
            if let Some(col) = find_word(code, "partial_cmp") {
                // The lone legitimate shape: *defining* `PartialOrd`.
                if !code.contains("fn partial_cmp") {
                    emit!(
                        Rule::FloatCmp,
                        i,
                        col,
                        "`partial_cmp` on a simulation path: NaN makes the order partial and the usual `.unwrap()` a panic path".to_string(),
                        "use `f64::total_cmp` (total, deterministic, panic-free) or compare `SimTime`".to_string()
                    );
                }
            }
        }

        // D6 — unbounded blocking reads / channel growth on serving paths.
        // Tests included: a harness that buffers an endless line is how the
        // unbounded call sneaks back in.
        if ctx.bounded_io() {
            for pat in ["read_to_end", "read_to_string", "read_line", "unbounded"] {
                if let Some(col) = find_word(code, pat) {
                    emit!(
                        Rule::UnboundedWait,
                        i,
                        col,
                        format!("unbounded read/queue `{pat}` in serving-path crate `{}`: a hostile client controls how much this buffers", ctx.crate_name),
                        "bound the read (`read_bounded_line`, `MAX_LINE_BYTES`) or the queue (admission control), or justify with `// lint: allow(unbounded-wait) -- <reason>`".to_string()
                    );
                }
            }
        }

        // D8 — swallowed Results in typed-error library code. `let _ =`
        // is only call-shaped lines (a `(` somewhere), so a discarded
        // loop variable does not trip it; `.ok();` is statement-position
        // by the trailing semicolon.
        if ctx.has_typed_errors && ctx.kind == CrateKind::Lib && !line.is_test {
            let t = code.trim();
            let swallow = if t.starts_with("let _ =") && code.contains('(') {
                code.find("let _").map(|c| (c, "let _ = …"))
            } else if t.ends_with(".ok();") && !t.contains('=') && !t.starts_with("return") {
                code.find(".ok();").map(|c| (c, ".ok();"))
            } else {
                None
            };
            if let Some((col, shape)) = swallow {
                emit!(
                    Rule::ErrorSwallow,
                    i,
                    col,
                    format!("`{shape}` discards a `Result` in `{}`, which has typed errors", ctx.crate_name),
                    "propagate the error (`?`), handle it, or justify the discard with `// lint: allow(error-swallow) -- <reason>`".to_string()
                );
            }
        }
    }
    FileAnalysis { findings, allows }
}

/// Lint one file's source text, per-line rules only. Pure function of
/// (context, source) so the fixture tests can drive it directly.
pub fn lint_source(ctx: &FileContext, source: &str) -> Vec<Finding> {
    analyze_lines(ctx, &lex(source)).findings
}

/// D7 `sim-reach`: walk the call graph from the engines' dispatch roots
/// and report every banned-API use in a reached function. Returns the
/// findings plus the `(file, 0-based line)` allow sites that suppressed
/// one, so the caller can mark them used before the stale audit.
pub fn check_sim_reach(graph: &CallGraph) -> (Vec<Finding>, Vec<(PathBuf, usize)>) {
    let roots = graph.dispatch_roots();
    let reach = graph.reachable(&roots);
    let mut findings = Vec::new();
    let mut used = Vec::new();
    for &n in reach.keys() {
        let f = graph.fn_fact(n);
        if f.banned.is_empty() {
            continue;
        }
        let file = graph.file(n);
        for b in &f.banned {
            if let Some(al) = b.allow_line {
                used.push((file.path.clone(), al));
                continue;
            }
            findings.push(Finding {
                rule: Rule::SimReach,
                file: file.path.clone(),
                line: b.line + 1,
                col: b.col + 1,
                what: format!(
                    "`{}` is reachable from engine event dispatch: {}",
                    b.pattern,
                    graph.chain(&reach, n)
                ),
                hint: "everything reachable from dispatch must be deterministic — seed the randomness, use `SimTime` or a `BTree` collection, or justify with `// lint: allow(sim-reach) -- <reason>`".to_string(),
            });
        }
    }
    (findings, used)
}

/// One fault site's audited status, for the D9 report and tests.
#[derive(Debug, Clone)]
pub struct SiteStatus {
    /// Constant name, e.g. `LINK_DROP`.
    pub name: String,
    /// 1-based line of the constant in the catalog file.
    pub line: usize,
    /// Present in `sites::ALL`.
    pub registered: bool,
    /// Labels of reachable functions referencing the site in argument
    /// position.
    pub hooks: Vec<String>,
    /// Preset constructors that set the site's probability field nonzero.
    pub presets: Vec<String>,
    /// A `// lint: allow(site-coverage)` covers the constant.
    pub allowed: bool,
}

/// D9 `site-coverage`: audit the fault-site catalog against the call
/// graph (hooks) and the preset table (coverage). One finding per
/// deficient site, listing every missing aspect; unknown names in
/// `sites::ALL` are their own findings.
pub fn check_site_coverage(
    graph: &CallGraph,
    cat: &SiteCatalog,
    cat_path: &Path,
) -> (Vec<Finding>, Vec<SiteStatus>, Vec<(PathBuf, usize)>) {
    let reach = graph.reachable(&graph.hook_roots());
    let mut findings = Vec::new();
    let mut statuses = Vec::new();
    let mut used = Vec::new();
    for c in &cat.consts {
        let mut hooks = Vec::new();
        for &n in reach.keys() {
            let f = graph.fn_fact(n);
            if !f.is_test && f.site_args.contains(&c.name) {
                hooks.push(graph.label(n));
            }
        }
        let presets: Vec<String> = match cat.prob_field.get(&c.name) {
            Some(field) => cat
                .preset_fields
                .iter()
                .filter(|(_, fields)| fields.contains(field))
                .map(|(p, _)| p.clone())
                .collect(),
            None => Vec::new(),
        };
        let registered = cat.registered.contains(&c.name);
        let mut problems = Vec::new();
        if !registered {
            problems.push("not registered in `sites::ALL`".to_string());
        }
        if hooks.is_empty() {
            problems.push("no hook call site reachable from the engines or serve".to_string());
        }
        if presets.is_empty() {
            problems.push("no `FaultPreset` sets its probability nonzero".to_string());
        }
        if !problems.is_empty() {
            if let Some(al) = c.allow_line {
                used.push((cat_path.to_path_buf(), al));
            } else {
                findings.push(Finding {
                    rule: Rule::SiteCoverage,
                    file: cat_path.to_path_buf(),
                    line: c.line + 1,
                    col: 1,
                    what: format!("fault site `{}` is deficient: {}", c.name, problems.join("; ")),
                    hint: "register the site in `sites::ALL`, wire a `fires(sites::…)`/`roll_*` hook on a delivery path, and give one preset a nonzero probability — or justify with `// lint: allow(site-coverage) -- <reason>`".to_string(),
                });
            }
        }
        statuses.push(SiteStatus {
            name: c.name.clone(),
            line: c.line + 1,
            registered,
            hooks,
            presets,
            allowed: c.allow_line.is_some(),
        });
    }
    for (name, line) in &cat.unknown_registered {
        findings.push(Finding {
            rule: Rule::SiteCoverage,
            file: cat_path.to_path_buf(),
            line: line + 1,
            col: 1,
            what: format!("`sites::ALL` registers `{name}`, which is not a site constant"),
            hint: "fix the typo or add the missing `pub const` to `mod sites`".to_string(),
        });
    }
    (findings, statuses, used)
}

/// A1 `stale-allow`: report allow sites that suppressed nothing, and
/// allow keys no rule owns. Run only after every rule (per-line and
/// workspace) has had its chance to mark uses.
pub fn stale_allow_findings(path: &Path, allows: &[AllowSite]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for a in allows {
        if !KNOWN_ALLOW_KEYS.contains(&a.key.as_str()) {
            findings.push(Finding {
                rule: Rule::StaleAllow,
                file: path.to_path_buf(),
                line: a.line,
                col: 1,
                what: format!("`lint: allow({})` names an unknown rule key", a.key),
                hint: format!("known keys: {}", KNOWN_ALLOW_KEYS.join(", ")),
            });
        } else if !a.used {
            findings.push(Finding {
                rule: Rule::StaleAllow,
                file: path.to_path_buf(),
                line: a.line,
                col: 1,
                what: format!("`lint: allow({})` no longer suppresses any finding", a.key),
                hint: "delete the stale justification — suppression debt must track the code it excuses".to_string(),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(name: &str, kind: CrateKind, typed: bool) -> FileContext {
        FileContext {
            crate_name: name.to_string(),
            kind,
            has_typed_errors: typed,
            path: PathBuf::from("test.rs"),
        }
    }

    #[test]
    fn d1_fires_and_allowlists() {
        let c = ctx("besst-core", CrateKind::Lib, false);
        let f = lint_source(&c, "use std::collections::HashMap;\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::HashOrder);
        assert_eq!(f[0].line, 1);
        let f = lint_source(&c, "// lint: allow(hash-order) -- keyed output is sorted before use\nuse std::collections::HashMap;\n");
        assert!(f.is_empty());
        // Not a sim-path crate → no finding.
        let c = ctx("besst-analytic", CrateKind::Lib, false);
        assert!(lint_source(&c, "use std::collections::HashMap;\n").is_empty());
    }

    #[test]
    fn d2_respects_crate_scope() {
        let c = ctx("besst-des", CrateKind::Lib, false);
        let f = lint_source(&c, "let t = Instant::now();\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::Nondet);
        let c = ctx("besst-experiments", CrateKind::Bin, false);
        assert!(lint_source(&c, "let t = Instant::now();\n").is_empty());
    }

    #[test]
    fn d3_only_with_typed_errors_and_outside_tests() {
        let c = ctx("besst-fti", CrateKind::Lib, true);
        let f = lint_source(&c, "let v = x.unwrap();\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::PanicPath);
        let f = lint_source(&c, "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n");
        assert!(f.is_empty());
        let c = ctx("besst-machine", CrateKind::Lib, false);
        assert!(lint_source(&c, "let v = x.unwrap();\n").is_empty());
    }

    #[test]
    fn d4_needs_safety_comment() {
        let c = ctx("besst-analytic", CrateKind::Lib, false);
        let f = lint_source(&c, "let p = unsafe { *ptr };\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::UndocumentedUnsafe);
        let ok = "// SAFETY: ptr is valid for the lifetime of the arena.\nlet p = unsafe { *ptr };\n";
        assert!(lint_source(&c, ok).is_empty());
    }

    #[test]
    fn d5_flags_partial_cmp_but_not_the_impl() {
        let c = ctx("besst-core", CrateKind::Lib, false);
        let f = lint_source(&c, "v.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::FloatCmp);
        assert!(lint_source(&c, "fn partial_cmp(&self, other: &Self) -> Option<Ordering> {\n").is_empty());
        assert!(lint_source(&c, "v.sort_by(|a, b| a.0.total_cmp(&b.0));\n").is_empty());
    }

    #[test]
    fn d5_float_time_equality() {
        let c = ctx("besst-core", CrateKind::Lib, false);
        let f = lint_source(&c, "if t.as_secs_f64() == end { halt(); }\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::FloatCmp);
    }

    #[test]
    fn d6_only_on_serving_path_crates() {
        let c = ctx("besst-serve", CrateKind::Lib, true);
        let f = lint_source(&c, "reader.read_line(&mut buf)?;\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::UnboundedWait);
        let f = lint_source(
            &c,
            "// lint: allow(unbounded-wait) -- trusted local pipe, batch-sized input\nreader.read_line(&mut buf)?;\n",
        );
        assert!(f.is_empty());
        // Other crates may buffer freely (xtask reads whole files).
        let c = ctx("besst-core", CrateKind::Lib, false);
        assert!(lint_source(&c, "reader.read_to_end(&mut buf)?;\n").is_empty());
    }

    #[test]
    fn d8_swallowed_results() {
        let c = ctx("besst-serve", CrateKind::Lib, true);
        let f = lint_source(&c, "let _ = stream.write(b\"x\");\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::ErrorSwallow);
        let f = lint_source(&c, "parse(input).ok();\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::ErrorSwallow);
        // A discarded loop variable is not a Result.
        assert!(lint_source(&c, "let _ = i;\n").is_empty());
        // `.ok()` in expression position (consumed) is fine.
        assert!(lint_source(&c, "let v = parse(input).ok();\n").is_empty());
        // Crates without typed errors are out of scope.
        let c = ctx("besst-des", CrateKind::Lib, false);
        assert!(lint_source(&c, "let _ = stream.write(b\"x\");\n").is_empty());
        // The allow key suppresses.
        let c = ctx("besst-serve", CrateKind::Lib, true);
        let f = lint_source(
            &c,
            "// lint: allow(error-swallow) -- best-effort reply, peer may be gone\nlet _ = stream.write(b\"x\");\n",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn allow_use_tracking_and_stale_audit() {
        let c = ctx("besst-core", CrateKind::Lib, false);
        let src = "// lint: allow(hash-order) -- sorted before observation\nuse std::collections::HashMap;\n// lint: allow(nondet) -- nothing nondeterministic here\nlet x = 1;\n// lint: allow(no-such-rule) -- typo\nlet y = 2;\n";
        let a = analyze_lines(&c, &crate::lexer::lex(src));
        assert!(a.findings.is_empty());
        assert_eq!(a.allows.len(), 3);
        assert!(a.allows[0].used, "hash-order allow suppressed the HashMap");
        assert!(!a.allows[1].used);
        let stale = stale_allow_findings(Path::new("test.rs"), &a.allows);
        assert_eq!(stale.len(), 2, "{stale:#?}");
        assert!(stale.iter().all(|f| f.rule == Rule::StaleAllow));
        assert_eq!(stale[0].line, 3, "unused nondet allow");
        assert_eq!(stale[1].line, 5, "unknown key");
        assert!(stale[1].what.contains("unknown"));
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let c = ctx("besst-des", CrateKind::Lib, false);
        let src = "// HashMap would break bit-identity\nlet s = \"Instant::now\";\n";
        assert!(lint_source(&c, src).is_empty());
    }
}
