//! The besst-lint rule catalog.
//!
//! Six repo-specific determinism/soundness rules (see
//! `docs/STATIC_ANALYSIS.md` for the rationale and the allow-list syntax):
//!
//! * **D1 `hash-order`** — no `std::collections::HashMap`/`HashSet` in
//!   simulation-path crates. Hash iteration order is randomized per
//!   process, so any observable state that flows through it breaks the
//!   repo's bit-identity guarantees. Use `BTreeMap`/`BTreeSet` (or a
//!   sorted `Vec`); justify exceptions with `// lint: allow(hash-order)`.
//! * **D2 `nondet`** — no ambient nondeterminism (`thread_rng`,
//!   `SystemTime::now`, `Instant::now`, `from_entropy`, `rand::random`)
//!   outside the `bench`/`experiments` crates. All randomness must be
//!   seeded (`SplitMix64`, `seed_from_u64`) and all time simulated.
//! * **D3 `panic-path`** — no `panic!`/`.unwrap()`/`.expect(` in non-test
//!   code of library crates that already expose typed errors (detected by
//!   a `pub enum *Error` in the crate): return the typed error instead.
//! * **D4 `undocumented-unsafe`** — every `unsafe` keyword must carry a
//!   `// SAFETY:` comment on the same or one of the three preceding lines.
//! * **D5 `float-cmp`** — no float equality (`==`/`!=` next to
//!   `as_secs_f64`/`as_micros_f64`/`_f64` time accessors) and no
//!   `partial_cmp` in simulation-path crates outside `besst_des::time`:
//!   compare `SimTime` (integer ns) or use `f64::total_cmp`, which is
//!   total, deterministic, and panic-free.
//! * **D6 `unbounded-wait`** — no unbounded blocking reads
//!   (`read_to_end`/`read_to_string`/`read_line`) or unbounded channel
//!   growth (`unbounded`) in serving-path crates: a client that streams
//!   an endless line or never drains must hit a typed limit
//!   (`MAX_LINE_BYTES`, a bounded queue), not exhaust memory. Justify
//!   exceptions with `// lint: allow(unbounded-wait)`.
//!
//! Allow-list syntax: `// lint: allow(<key>) -- <reason>` on the flagged
//! line or the line directly above it. The reason is mandatory by
//! convention and reviewed like a `// SAFETY:` comment.

use crate::lexer::{lex, Line};
use crate::workspace::CrateKind;
use std::fmt;
use std::path::PathBuf;

/// Crates whose code is on the simulation path: anything that can affect a
/// simulated trajectory, and therefore the DST bit-identity suite.
pub const SIM_PATH_CRATES: &[&str] = &[
    "besst-des",
    "besst-core",
    "besst-fti",
    "besst-abft",
    "besst-machine",
    "besst-models",
    "besst-apps",
];

/// Crates where ambient nondeterminism is tolerated (wall-clock timing of
/// campaigns, benchmark harnesses, and the scenario server — deadlines,
/// backoff and batch budgets are wall-clock by contract; the *simulated*
/// answers it serves stay seed-deterministic). Everything else must be
/// deterministic.
pub const NONDET_OK_CRATES: &[&str] = &["besst-bench", "besst-experiments", "xtask", "besst-serve"];

/// Crates that serve untrusted byte streams and therefore must bound
/// every read and queue (rule D6). Today: the scenario server.
pub const BOUNDED_IO_CRATES: &[&str] = &["besst-serve"];

/// One lint rule's identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// D1: hash-ordered collections in simulation-path crates.
    HashOrder,
    /// D2: ambient nondeterminism outside bench/experiments.
    Nondet,
    /// D3: panic paths in typed-error library crates.
    PanicPath,
    /// D4: `unsafe` without a `// SAFETY:` comment.
    UndocumentedUnsafe,
    /// D5: float comparison on timestamps / `partial_cmp` on sim paths.
    FloatCmp,
    /// D6: unbounded blocking reads / channel growth in serving-path
    /// crates.
    UnboundedWait,
}

impl Rule {
    /// Diagnostic code, e.g. `D1/hash-order`.
    pub fn code(self) -> &'static str {
        match self {
            Rule::HashOrder => "D1/hash-order",
            Rule::Nondet => "D2/nondet",
            Rule::PanicPath => "D3/panic-path",
            Rule::UndocumentedUnsafe => "D4/undocumented-unsafe",
            Rule::FloatCmp => "D5/float-cmp",
            Rule::UnboundedWait => "D6/unbounded-wait",
        }
    }

    /// Key accepted by `// lint: allow(<key>)`.
    pub fn allow_key(self) -> &'static str {
        match self {
            Rule::HashOrder => "hash-order",
            Rule::Nondet => "nondet",
            Rule::PanicPath => "panic-path",
            Rule::UndocumentedUnsafe => "undocumented-unsafe",
            Rule::FloatCmp => "float-cmp",
            Rule::UnboundedWait => "unbounded-wait",
        }
    }
}

/// A single diagnostic: rule, location, matched text, fix hint.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// File the finding is in.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column of the match start.
    pub col: usize,
    /// What the rule matched (for the message).
    pub what: String,
    /// One-line fix suggestion.
    pub hint: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "error[{}]: {}",
            self.rule.code(),
            self.what
        )?;
        writeln!(f, "  --> {}:{}:{}", self.file.display(), self.line, self.col)?;
        write!(f, "  hint: {}", self.hint)
    }
}

/// Per-file lint context: which crate the file belongs to and what kind of
/// target it is.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Package name from the owning crate's `Cargo.toml`.
    pub crate_name: String,
    /// Library source vs. test/bench/example target.
    pub kind: CrateKind,
    /// True when the owning crate defines a `pub enum *Error` (enables D3).
    pub has_typed_errors: bool,
    /// Path as reported in diagnostics (workspace-relative).
    pub path: PathBuf,
}

impl FileContext {
    fn sim_path(&self) -> bool {
        SIM_PATH_CRATES.contains(&self.crate_name.as_str())
    }
    fn bounded_io(&self) -> bool {
        BOUNDED_IO_CRATES.contains(&self.crate_name.as_str())
    }
    fn nondet_ok(&self) -> bool {
        NONDET_OK_CRATES.contains(&self.crate_name.as_str())
    }
    /// `besst_des::time` is the one module allowed to convert/compare
    /// float time (it owns the float↔integer boundary).
    fn is_time_module(&self) -> bool {
        self.crate_name == "besst-des" && self.path.ends_with("src/time.rs")
    }
}

/// Does line `i`, or the contiguous comment block directly above it, carry
/// the marker `needle`? Multi-line justifications are idiomatic, so the
/// search walks upward while lines are comment-only.
fn marked(lines: &[Line], i: usize, needle: &str) -> bool {
    if lines[i].comment.contains(needle) {
        return true;
    }
    let mut j = i;
    while j > 0 {
        j -= 1;
        let l = &lines[j];
        let comment_only = !l.comment.is_empty() && l.code.trim().is_empty();
        if comment_only {
            if l.comment.contains(needle) {
                return true;
            }
        } else {
            break;
        }
    }
    false
}

/// Does line `i` (or the comment block above) carry `// lint: allow(<key>)`?
fn allowed(lines: &[Line], i: usize, key: &str) -> bool {
    marked(lines, i, &format!("lint: allow({key})"))
}

/// Does line `i` (or the comment block above) carry a `SAFETY:` comment?
fn has_safety_comment(lines: &[Line], i: usize) -> bool {
    marked(lines, i, "SAFETY:")
}

/// Match `needle` in `hay` only at identifier boundaries, returning the
/// 0-based byte offset of the first such match.
fn find_word(hay: &str, needle: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(rel) = hay[from..].find(needle) {
        let at = from + rel;
        let before_ok = at == 0
            || !hay[..at].chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_');
        let end = at + needle.len();
        let after_ok = end >= hay.len()
            || !hay[end..].chars().next().is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return Some(at);
        }
        from = end;
    }
    None
}

/// Lint one file's source text. Pure function of (context, source) so the
/// fixture tests can drive it directly.
pub fn lint_source(ctx: &FileContext, source: &str) -> Vec<Finding> {
    let lines = lex(source);
    let mut findings = Vec::new();
    let mut push = |rule: Rule, line: usize, col: usize, what: String, hint: String| {
        findings.push(Finding { rule, file: ctx.path.clone(), line: line + 1, col: col + 1, what, hint });
    };

    for (i, line) in lines.iter().enumerate() {
        let code = line.code.as_str();
        if code.is_empty() {
            continue;
        }

        // D1 — hash-ordered collections on the simulation path. Applies to
        // test code too: a hash-ordered test harness is a flaky test.
        if ctx.sim_path() && !allowed(&lines, i, Rule::HashOrder.allow_key()) {
            for name in ["HashMap", "HashSet"] {
                if let Some(col) = find_word(code, name) {
                    push(
                        Rule::HashOrder,
                        i,
                        col,
                        format!("`{name}` in simulation-path crate `{}`: iteration order is per-process random and breaks bit-identity", ctx.crate_name),
                        "use `BTreeMap`/`BTreeSet` (deterministic order) or justify with `// lint: allow(hash-order) -- <reason>`".to_string(),
                    );
                }
            }
        }

        // D2 — ambient nondeterminism. Everywhere except bench/experiments;
        // test code included (DST replays require deterministic tests).
        if !ctx.nondet_ok() && !allowed(&lines, i, Rule::Nondet.allow_key()) {
            for pat in ["thread_rng", "SystemTime::now", "Instant::now", "from_entropy", "rand::random"] {
                if let Some(col) = find_word(code, pat) {
                    push(
                        Rule::Nondet,
                        i,
                        col,
                        format!("ambient nondeterminism `{pat}` in crate `{}`", ctx.crate_name),
                        "seed explicitly (`SplitMix64::new(seed)`, `seed_from_u64`) or use `SimTime`; wall-clock timing belongs in `bench`/`experiments`".to_string(),
                    );
                }
            }
        }

        // D3 — panic paths where a typed error already exists. Library
        // (non-test) code only; doc examples and tests may unwrap.
        if ctx.has_typed_errors
            && ctx.kind == CrateKind::Lib
            && !line.is_test
            && !allowed(&lines, i, Rule::PanicPath.allow_key())
        {
            for pat in [".unwrap()", ".expect(", "panic!("] {
                if let Some(col) = code.find(pat) {
                    push(
                        Rule::PanicPath,
                        i,
                        col,
                        format!("panic path `{}` in `{}`, which has typed errors", pat.trim_end_matches('('), ctx.crate_name),
                        "return the crate's typed error (`RecoveryError` precedent) or justify with `// lint: allow(panic-path) -- <invariant>`".to_string(),
                    );
                }
            }
        }

        // D4 — undocumented `unsafe`. Everywhere, tests included.
        if let Some(col) = find_word(code, "unsafe") {
            // `unsafe_op_in_unsafe_fn`-style idents are handled by
            // find_word's boundary check; attribute spellings like
            // `#![deny(unsafe_op_in_unsafe_fn)]` never match the bare word.
            if !has_safety_comment(&lines, i) && !allowed(&lines, i, Rule::UndocumentedUnsafe.allow_key()) {
                push(
                    Rule::UndocumentedUnsafe,
                    i,
                    col,
                    "`unsafe` without a `// SAFETY:` comment".to_string(),
                    "document the invariant that makes this sound (`// SAFETY: …`) on the line above, or remove the `unsafe`".to_string(),
                );
            }
        }

        // D5 — float comparison on timestamps; `partial_cmp` on sim paths.
        if ctx.sim_path() && !ctx.is_time_module() && !allowed(&lines, i, Rule::FloatCmp.allow_key()) {
            let float_time = ["as_secs_f64", "as_micros_f64", "elapsed_s", "makespan_s"]
                .iter()
                .any(|p| code.contains(p));
            if float_time && (code.contains("==") || code.contains("!=") || code.contains("assert_eq!")) {
                let col = code.find("==").or_else(|| code.find("!=")).unwrap_or(0);
                push(
                    Rule::FloatCmp,
                    i,
                    col,
                    "float equality on a timestamp".to_string(),
                    "compare `SimTime` (integer nanoseconds) instead, or use an explicit tolerance".to_string(),
                );
            }
            if let Some(col) = find_word(code, "partial_cmp") {
                // The lone legitimate shape: *defining* `PartialOrd`.
                if !code.contains("fn partial_cmp") {
                    push(
                        Rule::FloatCmp,
                        i,
                        col,
                        "`partial_cmp` on a simulation path: NaN makes the order partial and the usual `.unwrap()` a panic path".to_string(),
                        "use `f64::total_cmp` (total, deterministic, panic-free) or compare `SimTime`".to_string(),
                    );
                }
            }
        }

        // D6 — unbounded blocking reads / channel growth on serving paths.
        // Tests included: a harness that buffers an endless line is how the
        // unbounded call sneaks back in.
        if ctx.bounded_io() && !allowed(&lines, i, Rule::UnboundedWait.allow_key()) {
            for pat in ["read_to_end", "read_to_string", "read_line", "unbounded"] {
                if let Some(col) = find_word(code, pat) {
                    push(
                        Rule::UnboundedWait,
                        i,
                        col,
                        format!("unbounded read/queue `{pat}` in serving-path crate `{}`: a hostile client controls how much this buffers", ctx.crate_name),
                        "bound the read (`read_bounded_line`, `MAX_LINE_BYTES`) or the queue (admission control), or justify with `// lint: allow(unbounded-wait) -- <reason>`".to_string(),
                    );
                }
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(name: &str, kind: CrateKind, typed: bool) -> FileContext {
        FileContext {
            crate_name: name.to_string(),
            kind,
            has_typed_errors: typed,
            path: PathBuf::from("test.rs"),
        }
    }

    #[test]
    fn d1_fires_and_allowlists() {
        let c = ctx("besst-core", CrateKind::Lib, false);
        let f = lint_source(&c, "use std::collections::HashMap;\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::HashOrder);
        assert_eq!(f[0].line, 1);
        let f = lint_source(&c, "// lint: allow(hash-order) -- keyed output is sorted before use\nuse std::collections::HashMap;\n");
        assert!(f.is_empty());
        // Not a sim-path crate → no finding.
        let c = ctx("besst-analytic", CrateKind::Lib, false);
        assert!(lint_source(&c, "use std::collections::HashMap;\n").is_empty());
    }

    #[test]
    fn d2_respects_crate_scope() {
        let c = ctx("besst-des", CrateKind::Lib, false);
        let f = lint_source(&c, "let t = Instant::now();\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::Nondet);
        let c = ctx("besst-experiments", CrateKind::Bin, false);
        assert!(lint_source(&c, "let t = Instant::now();\n").is_empty());
    }

    #[test]
    fn d3_only_with_typed_errors_and_outside_tests() {
        let c = ctx("besst-fti", CrateKind::Lib, true);
        let f = lint_source(&c, "let v = x.unwrap();\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::PanicPath);
        let f = lint_source(&c, "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n");
        assert!(f.is_empty());
        let c = ctx("besst-machine", CrateKind::Lib, false);
        assert!(lint_source(&c, "let v = x.unwrap();\n").is_empty());
    }

    #[test]
    fn d4_needs_safety_comment() {
        let c = ctx("besst-analytic", CrateKind::Lib, false);
        let f = lint_source(&c, "let p = unsafe { *ptr };\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::UndocumentedUnsafe);
        let ok = "// SAFETY: ptr is valid for the lifetime of the arena.\nlet p = unsafe { *ptr };\n";
        assert!(lint_source(&c, ok).is_empty());
    }

    #[test]
    fn d5_flags_partial_cmp_but_not_the_impl() {
        let c = ctx("besst-core", CrateKind::Lib, false);
        let f = lint_source(&c, "v.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::FloatCmp);
        assert!(lint_source(&c, "fn partial_cmp(&self, other: &Self) -> Option<Ordering> {\n").is_empty());
        assert!(lint_source(&c, "v.sort_by(|a, b| a.0.total_cmp(&b.0));\n").is_empty());
    }

    #[test]
    fn d5_float_time_equality() {
        let c = ctx("besst-core", CrateKind::Lib, false);
        let f = lint_source(&c, "if t.as_secs_f64() == end { halt(); }\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::FloatCmp);
    }

    #[test]
    fn d6_only_on_serving_path_crates() {
        let c = ctx("besst-serve", CrateKind::Lib, true);
        let f = lint_source(&c, "reader.read_line(&mut buf)?;\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::UnboundedWait);
        let f = lint_source(
            &c,
            "// lint: allow(unbounded-wait) -- trusted local pipe, batch-sized input\nreader.read_line(&mut buf)?;\n",
        );
        assert!(f.is_empty());
        // Other crates may buffer freely (xtask reads whole files).
        let c = ctx("besst-core", CrateKind::Lib, false);
        assert!(lint_source(&c, "reader.read_to_end(&mut buf)?;\n").is_empty());
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let c = ctx("besst-des", CrateKind::Lib, false);
        let src = "// HashMap would break bit-identity\nlet s = \"Instant::now\";\n";
        assert!(lint_source(&c, src).is_empty());
    }
}
