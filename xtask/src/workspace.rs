//! Workspace discovery for the linter.
//!
//! A dependency-free stand-in for `cargo metadata`: the workspace root's
//! `Cargo.toml` is parsed just enough to expand its `members` globs, each
//! member's `Cargo.toml` yields the package name, and every `.rs` file
//! under the member's `src/`, `tests/`, `benches/`, and `examples/` trees
//! is classified by target kind. (The offline stub registry this repo
//! builds against — docs/OFFLINE_BUILDS.md — has no `cargo_metadata`/`syn`,
//! and shelling out to `cargo metadata` would drag JSON parsing in; the
//! workspace layout is simple enough to walk directly.)

use std::fs;
use std::path::{Path, PathBuf};

/// What kind of compilation target a file belongs to. D3 only applies to
/// [`CrateKind::Lib`] code; the other kinds are test/dev targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrateKind {
    /// `src/**` of a library crate.
    Lib,
    /// `src/bin/**` or `src/main.rs` binaries.
    Bin,
    /// `tests/**` integration tests.
    Test,
    /// `benches/**`.
    Bench,
    /// `examples/**`.
    Example,
}

/// One workspace member.
#[derive(Debug, Clone)]
pub struct Member {
    /// Package name from `Cargo.toml`.
    pub name: String,
    /// Member directory, workspace-relative.
    pub dir: PathBuf,
    /// True if the crate declares a `pub enum *Error` anywhere in `src/`.
    pub has_typed_errors: bool,
    /// `[dependencies]` entries (every name; the call-graph builder
    /// filters to workspace members). Dev-dependencies are excluded —
    /// they only link into test targets, which are never cross-crate
    /// callees.
    pub deps: Vec<String>,
}

/// A source file to lint, with its classification.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Owning package name.
    pub crate_name: String,
    /// Target kind.
    pub kind: CrateKind,
    /// Path relative to the workspace root.
    pub path: PathBuf,
    /// True if the owning crate has typed errors (enables D3).
    pub has_typed_errors: bool,
}

/// Locate the workspace root by walking up from `start` to the first
/// `Cargo.toml` containing a `[workspace]` table.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Extract `name = "…"` from a `Cargo.toml`'s `[package]` table.
fn package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for line in manifest.lines() {
        let t = line.trim();
        if t.starts_with('[') {
            in_package = t == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = t.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(rest) = rest.strip_prefix('=') {
                    return Some(rest.trim().trim_matches('"').to_string());
                }
            }
        }
    }
    None
}

/// Expand the root manifest's `members = [...]` list (literal paths and
/// single-level `dir/*` globs).
fn member_dirs(root: &Path, manifest: &str) -> Vec<PathBuf> {
    let mut dirs = Vec::new();
    // Find the members array, which may span lines.
    let Some(start) = manifest.find("members") else {
        return dirs;
    };
    let Some(open) = manifest[start..].find('[') else {
        return dirs;
    };
    let Some(close) = manifest[start + open..].find(']') else {
        return dirs;
    };
    let list = &manifest[start + open + 1..start + open + close];
    for entry in list.split(',') {
        let entry = entry.trim().trim_matches('"');
        if entry.is_empty() {
            continue;
        }
        if let Some(prefix) = entry.strip_suffix("/*") {
            let base = root.join(prefix);
            let Ok(rd) = fs::read_dir(&base) else { continue };
            let mut found: Vec<PathBuf> = rd
                .flatten()
                .map(|e| e.path())
                .filter(|p| p.join("Cargo.toml").is_file())
                .collect();
            found.sort();
            dirs.extend(found);
        } else {
            let p = root.join(entry);
            if p.join("Cargo.toml").is_file() {
                dirs.push(p);
            }
        }
    }
    dirs
}

/// Parse the `[dependencies]` section names out of a manifest. Handles
/// the three shapes in this workspace: `foo = "1"`, `foo.workspace =
/// true`, and `foo = { path = "…" }`.
fn dependency_names(manifest: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_deps = false;
    for line in manifest.lines() {
        let t = line.trim();
        if t.starts_with('[') {
            in_deps = t == "[dependencies]";
            continue;
        }
        if !in_deps || t.is_empty() || t.starts_with('#') {
            continue;
        }
        let name: String = t
            .chars()
            .take_while(|&c| c.is_alphanumeric() || c == '-' || c == '_')
            .collect();
        if !name.is_empty() {
            out.push(name);
        }
    }
    out
}

/// Discover all workspace members (including the root package, if any),
/// or explain which manifest broke. Unreadable and nameless member
/// manifests are hard errors: a linter that silently skips a crate is a
/// linter that silently passes it.
pub fn try_members(root: &Path) -> Result<Vec<Member>, String> {
    let root_manifest = root.join("Cargo.toml");
    let manifest = fs::read_to_string(&root_manifest)
        .map_err(|e| format!("{}: unreadable workspace manifest: {e}", root_manifest.display()))?;
    let mut dirs = member_dirs(root, &manifest);
    if manifest.contains("[package]") {
        dirs.push(root.to_path_buf());
    }
    if dirs.is_empty() {
        return Err(format!(
            "{}: no workspace members found (missing or empty `members = […]`)",
            root_manifest.display()
        ));
    }
    let mut out = Vec::new();
    for dir in dirs {
        let path = dir.join("Cargo.toml");
        let m = fs::read_to_string(&path)
            .map_err(|e| format!("{}: unreadable member manifest: {e}", path.display()))?;
        let name = package_name(&m).ok_or_else(|| {
            format!("{}: member manifest has no `[package]` name", path.display())
        })?;
        let has_typed_errors = crate_has_typed_errors(&dir);
        out.push(Member { name, dir, has_typed_errors, deps: dependency_names(&m) });
    }
    out.sort_by(|a, b| a.dir.cmp(&b.dir));
    Ok(out)
}

/// Infallible wrapper over [`try_members`] for callers that treat a broken
/// workspace as an empty one (the fixture tests, mostly).
pub fn members(root: &Path) -> Vec<Member> {
    try_members(root).unwrap_or_default()
}

/// Whether any `src/` file declares a public error enum (`pub enum FooError`).
fn crate_has_typed_errors(dir: &Path) -> bool {
    let mut found = false;
    walk_rs(&dir.join("src"), &mut |p| {
        if found {
            return;
        }
        if let Ok(text) = fs::read_to_string(p) {
            found = text.lines().any(|l| {
                let t = l.trim_start();
                t.starts_with("pub enum") && t.split_whitespace().nth(2).is_some_and(|n| {
                    n.trim_end_matches(|c: char| !c.is_alphanumeric()).ends_with("Error")
                })
            });
        }
    });
    found
}

/// Recursively visit every `.rs` file under `dir` in sorted order.
fn walk_rs(dir: &Path, f: &mut dyn FnMut(&Path)) {
    let Ok(rd) = fs::read_dir(dir) else { return };
    let mut entries: Vec<PathBuf> = rd.flatten().map(|e| e.path()).collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            walk_rs(&p, f);
        } else if p.extension().is_some_and(|e| e == "rs") {
            f(&p);
        }
    }
}

/// Enumerate every lintable source file in the workspace, sorted, with
/// fixture trees excluded (they contain deliberate violations).
pub fn source_files(root: &Path) -> Vec<SourceFile> {
    let mut out = Vec::new();
    for m in members(root) {
        let subtrees: &[(&str, CrateKind)] = &[
            ("src", CrateKind::Lib),
            ("tests", CrateKind::Test),
            ("benches", CrateKind::Bench),
            ("examples", CrateKind::Example),
        ];
        for (sub, kind) in subtrees {
            // The root package's tests/ and examples/ belong to it; but when
            // the member *is* the root, skip re-walking crates/ via src —
            // walk_rs only descends the named subtree, so nothing overlaps.
            walk_rs(&m.dir.join(sub), &mut |p| {
                let rel = p.strip_prefix(root).unwrap_or(p).to_path_buf();
                // Lint fixtures are deliberate violations.
                if rel.components().any(|c| c.as_os_str() == "fixtures") {
                    return;
                }
                let mut kind = *kind;
                if kind == CrateKind::Lib {
                    let s = rel.to_string_lossy();
                    if s.contains("/bin/") || s.ends_with("src/main.rs") {
                        kind = CrateKind::Bin;
                    }
                }
                out.push(SourceFile {
                    crate_name: m.name.clone(),
                    kind,
                    path: rel,
                    has_typed_errors: m.has_typed_errors,
                });
            });
        }
    }
    out.sort_by(|a, b| a.path.cmp(&b.path));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_this_workspace() {
        let root = find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
        let ms = members(&root);
        assert!(ms.iter().any(|m| m.name == "besst-des"));
        assert!(ms.iter().any(|m| m.name == "xtask"));
        // fti declares RecoveryError/RsError/ConfigError.
        let fti = ms.iter().find(|m| m.name == "besst-fti").expect("fti member");
        assert!(fti.has_typed_errors);
        // core declares OnlineError, so D3 scopes it too.
        let core = ms.iter().find(|m| m.name == "besst-core").expect("core member");
        assert!(core.has_typed_errors);
        // des has no typed error enum today.
        let des = ms.iter().find(|m| m.name == "besst-des").expect("des member");
        assert!(!des.has_typed_errors);
        // serve declares ServeError, so D3 scopes the serving layer too.
        let serve = ms.iter().find(|m| m.name == "besst-serve").expect("serve member");
        assert!(serve.has_typed_errors);
    }

    #[test]
    fn fixture_trees_are_excluded() {
        let root = find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
        let files = source_files(&root);
        assert!(!files.is_empty());
        assert!(files.iter().all(|f| !f.path.to_string_lossy().contains("fixtures")));
        // Sorted, deterministic output — the linter eats its own dog food.
        let mut sorted = files.iter().map(|f| f.path.clone()).collect::<Vec<_>>();
        sorted.sort();
        assert_eq!(sorted, files.iter().map(|f| f.path.clone()).collect::<Vec<_>>());
    }

    #[test]
    fn dependency_names_cover_workspace_shapes() {
        let m = "[package]\nname = \"x\"\n[dependencies]\nbesst-des.workspace = true\nrand = \"0.8\"\nserde = { version = \"1\", features = [\"derive\"] }\n\n[dev-dependencies]\nproptest.workspace = true\n";
        assert_eq!(dependency_names(m), vec!["besst-des", "rand", "serde"]);
    }

    #[test]
    fn member_deps_follow_the_crate_graph() {
        let root = find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
        let ms = members(&root);
        let core = ms.iter().find(|m| m.name == "besst-core").expect("core member");
        assert!(core.deps.iter().any(|d| d == "besst-des"), "{:?}", core.deps);
        // Dev-dependencies are not linkable from library targets.
        assert!(!core.deps.iter().any(|d| d == "besst-analytic"), "{:?}", core.deps);
        let des = ms.iter().find(|m| m.name == "besst-des").expect("des member");
        assert!(
            !des.deps.iter().any(|d| d.starts_with("besst-")),
            "des is the workspace leaf: {:?}",
            des.deps
        );
    }

    #[test]
    fn try_members_reports_broken_roots() {
        let err = try_members(Path::new("/nonexistent-besst-root")).unwrap_err();
        assert!(err.contains("unreadable workspace manifest"), "{err}");
    }

    #[test]
    fn package_name_parses() {
        assert_eq!(
            package_name("[package]\nname = \"foo\"\nversion = \"1\"\n"),
            Some("foo".to_string())
        );
        assert_eq!(package_name("[workspace]\nmembers = []\n"), None);
    }
}
