//! Schema gate for `cargo run -p xtask -- bench-json`: runs the miniature
//! configuration in-process and validates the report's shape — every
//! section and leaf field present, rates strictly positive, totals at
//! least the sum of their parts. Keeps the committed
//! `results/BENCH_0011.json` regenerable without a JSON parser dependency
//! (serde_json is stubbed in this repo's offline builds).

use xtask::bench::{json_number, run, BenchParams};

fn field(report: &str, key: &str) -> f64 {
    json_number(report, key).unwrap_or_else(|| panic!("report is missing \"{key}\""))
}

#[test]
fn miniature_report_has_the_full_schema() {
    let report = run(&BenchParams::miniature());

    // Structural markers: every section object must be present.
    for section in [
        "\"engine\":",
        "\"online_replay\":",
        "\"overlay_sweep\":",
        "\"serve\":",
        "\"serve_cluster\":",
        "\"weak_scaling\":",
        "\"full_machine\":",
        "\"totals\":",
    ] {
        assert!(report.contains(section), "missing section {section} in:\n{report}");
    }
    for leaf in [
        "\"scheduler\":",
        "\"reference\":",
        "\"fail_stop\":",
        "\"sdc\":",
        "\"chaos\":",
        "\"scaling\":",
        "\"failover\":",
        "\"points\":",
        "\"quartz\":",
        "\"vulcan_cores\":",
    ] {
        assert!(report.contains(leaf), "missing leaf {leaf} in:\n{report}");
    }
    assert!(report.contains("\"schema\": \"besst-bench-json-v4\""), "schema tag missing");
    assert!(report.contains("\"bench_id\": \"BENCH_0011\""), "bench id missing");

    // Every measured field must parse as a number.
    for key in [
        "seed",
        "components",
        "backlog",
        "hops",
        "iterations",
        "events_total",
        "speedup",
        "steps",
        "replicas",
        "replicas_per_cell",
        "cells",
        "trace_peak_queue_depth",
        "cells_per_sec",
        "wall_s",
        "events_per_sec",
        "replays_per_sec",
        "peak_queue_depth",
        "fault_events_total",
        "allocations",
        "queries",
        "distinct_baselines",
        "queries_per_sec",
        "cache_hit_rate",
        "shed_rate",
        "cold_baseline_wall_s",
        "warm_baseline_wall_s",
        "cached_speedup",
        "ok",
        "panics_caught",
        "worker_crashes",
        "worker_delays",
        "cache_corruptions",
        "shards",
        "storm_seed",
        "deaths",
        "rejoins",
        "failovers",
        "shard_crashes",
        "lost",
        "duplicated",
        "mismatched",
        "bytes_flat_ratio",
        "exponent",
        "bytes_per_component",
        "delivered",
        "n_leaves",
        "leaf_degree",
        "cores",
        "node_degree",
    ] {
        field(&report, key);
    }
}

#[test]
fn weak_scaling_section_is_consistent() {
    let p = BenchParams::miniature();
    let report = run(&p);
    let at = report.find("\"weak_scaling\"").expect("weak_scaling section");
    let section = &report[at..report.find("\"full_machine\"").expect("full_machine section")];
    // One point per exponent, components = 2^exponent, delivery
    // conservation per point.
    for &k in &p.weak_scaling_exponents {
        let marker = format!("\"exponent\": {k},");
        let point_at = section.find(&marker).unwrap_or_else(|| panic!("missing 2^{k} point"));
        let point = &section[point_at..];
        assert_eq!(field(point, "components"), (1u64 << k) as f64);
        let seeds = ((1u64 << k) * p.substrate_seeds_per_16 / 16).max(1);
        assert_eq!(field(point, "delivered"), (seeds * (p.substrate_hops + 1)) as f64);
        assert!(field(point, "events_per_sec") > 0.0);
    }
    // Without the counting allocator the ratio reads 0; with it, the gate
    // range. Either way it must be present and finite.
    let ratio = field(section, "bytes_flat_ratio");
    assert!(ratio >= 0.0);

    // Full-machine runs deliver and conserve too.
    let fm = &report[report.find("\"full_machine\"").expect("full_machine")..];
    let quartz = &fm[fm.find("\"quartz\"").expect("quartz leaf")..];
    assert_eq!(field(quartz, "components"), p.quartz_nodes as f64);
    let vulcan = &fm[fm.find("\"vulcan_cores\"").expect("vulcan leaf")..];
    let vulcan_components: usize = p.vulcan_dims.iter().product::<usize>() * p.vulcan_cores;
    assert_eq!(field(vulcan, "components"), vulcan_components as f64);
}

#[test]
fn mem_gate_reports_missing_allocator_in_tests() {
    // The test harness never installs the counting allocator, so the gate
    // must refuse to pass vacuously rather than report 0-byte components.
    let err = xtask::bench::mem_gate(&[4, 5], 0.10)
        .expect_err("gate must not pass without the counting allocator");
    assert!(err.contains("counting allocator"), "unexpected gate error: {err}");
}

#[test]
fn miniature_report_rates_are_positive_and_consistent() {
    let p = BenchParams::miniature();
    let report = run(&p);

    assert!(field(&report, "events_per_sec") > 0.0, "engine throughput must be positive");
    assert!(field(&report, "replays_per_sec") > 0.0, "replay throughput must be positive");
    assert!(field(&report, "speedup") > 0.0, "speedup is a ratio of positive rates");
    assert!(field(&report, "cells_per_sec") > 0.0, "overlay throughput must be positive");
    assert!(field(&report, "queries_per_sec") > 0.0, "serve throughput must be positive");
    assert!(field(&report, "cached_speedup") > 1.0, "a cache hit must beat a recompute");
    let hit_rate = field(&report, "cache_hit_rate");
    assert!((0.0..=1.0).contains(&hit_rate), "cache_hit_rate out of range: {hit_rate}");
    // Half the throughput batch is admitted by the strict server, so the
    // shed rate is 1/2 by construction (exact: both counts are integers).
    assert_eq!(field(&report, "shed_rate"), 0.5, "strict admission sheds the overflow half");
    // The chaos batch answers every query and really injected faults.
    assert_eq!(field(&report, "ok") as usize, p.serve_queries, "chaos batch answers everything");
    assert!(field(&report, "panics_caught") > 0.0, "chaos must exercise the isolation layer");
    // The failover run is exactly-once by construction: zero lost, zero
    // duplicated, zero answers differing from the single-shard run.
    let failover_at = report.find("\"failover\"").expect("failover section");
    let failover = &report[failover_at..];
    for key in ["lost", "duplicated", "mismatched"] {
        assert_eq!(field(failover, key), 0.0, "failover run must be exactly-once ({key})");
    }
    assert!(field(failover, "queries_per_sec") > 0.0, "failover throughput must be positive");

    // The engine section's event count is exactly the workload's.
    let expected =
        (p.components * p.backlog) as f64 * f64::from(p.hops + 1) * f64::from(p.engine_iters);
    assert_eq!(field(&report, "events_total"), expected, "engine events_total mismatch");

    // json_number returns the FIRST match: "events_total" inside the
    // engine section, "wall_s" inside the scheduler leaf. Grab the totals
    // section explicitly to check monotonicity.
    let totals_at = report.find("\"totals\"").expect("totals section");
    let totals = &report[totals_at..];
    let total_events = field(totals, "events_total");
    assert!(
        total_events >= 2.0 * expected,
        "totals.events_total {total_events} < both engine sides {expected} x 2"
    );
    let total_wall = field(totals, "wall_s");
    let engine_wall = field(&report, "wall_s"); // first wall_s = scheduler leaf
    assert!(
        total_wall >= engine_wall,
        "totals.wall_s {total_wall} < one engine measurement {engine_wall}"
    );
    // Without the binary's counting allocator installed, allocation
    // counts are zero — but never negative and never missing.
    assert!(field(totals, "allocations") >= 0.0);
}

#[test]
fn equal_seeds_give_equal_workload_sections() {
    // Wall-clock fields differ run to run, but everything derived from
    // the pinned seed — event counts, peak depths, fault event totals —
    // must be identical across invocations.
    let a = run(&BenchParams::miniature());
    let b = run(&BenchParams::miniature());
    for key in ["events_total", "peak_queue_depth", "fault_events_total", "trace_peak_queue_depth"]
    {
        assert_eq!(field(&a, key), field(&b, key), "seeded field \"{key}\" is nondeterministic");
    }
}
