//! The doc-link pass over this repository must be clean — the same gate
//! CI runs via `cargo run -p xtask -- doc-links` (`just doc-links`),
//! driven through the library so `cargo test -p xtask` catches a broken
//! link without a separate binary invocation.

use std::path::Path;
use xtask::doclinks::check_docs;
use xtask::workspace::find_root;

#[test]
fn repo_markdown_has_no_broken_references() {
    let root = find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    let report = check_docs(&root);
    assert!(
        report.findings.is_empty(),
        "broken documentation references:\n{}",
        report
            .findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Coverage sanity: the pass must actually have scanned the guide set
    // (README, DESIGN, and the docs/ tree) and checked real references —
    // an empty walk would be a vacuously green gate.
    assert!(report.files >= 7, "only {} markdown files scanned", report.files);
    assert!(report.checked >= 20, "only {} references checked", report.checked);
}
