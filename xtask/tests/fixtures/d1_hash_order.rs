//! D1 fixture: hash-ordered collections in a simulation-path crate.
//! Linted as crate `besst-core` by `tests/lint_rules.rs`; never compiled.

use std::collections::HashMap; // VIOLATION line 4
use std::collections::BTreeMap; // ok

fn per_component_counts() {
    let mut counts: HashMap<u32, u64> = HashMap::new(); // VIOLATION line 8 (two matches)
    counts.insert(1, 2);

    // lint: allow(hash-order) -- counts are drained into a sorted Vec
    // before anything observable reads them.
    let justified: std::collections::HashSet<u32> = Default::default();
    let _ = (counts, justified);

    // "HashMap" in a string and HashMap in this comment must not fire.
    let _doc = "HashMap iteration order";

    let _ordered: BTreeMap<u32, u64> = BTreeMap::new();
}

// ── Scheduler-shaped cases ─────────────────────────────────────────────

struct HashedScheduler {
    // An event queue keyed by hash order would make pop order depend on
    // RandomState — exactly the trajectory break D1 exists to catch.
    pending: std::collections::HashMap<u64, u32>, // VIOLATION
}

fn recycle_slots(s: &mut HashedScheduler) {
    for (_key, _slot) in s.pending.drain() {}
    // lint: allow(hash-order) -- free-slot membership only; slots are
    // generation-checked before reuse, so iteration order is unobservable.
    let _free: std::collections::HashSet<u32> = Default::default();
}

// ── Flat-table shapes ──────────────────────────────────────────────────

/// The struct-of-arrays replacement: dense per-component state plus CSR
/// link offsets. Iteration order is index order by construction, so D1
/// must stay silent on every line of this block.
struct FlatStore {
    states: Vec<u64>,
    link_offsets: Vec<u32>,
    link_slots: Vec<u32>,
}

fn flat_iteration(s: &FlatStore) {
    for (id, st) in s.states.iter().enumerate() {
        let lo = s.link_offsets[id] as usize;
        let hi = s.link_offsets[id + 1] as usize;
        for slot in &s.link_slots[lo..hi] {
            let _ = (st, slot);
        }
    }
}

/// A hash-keyed side index undoes the determinism the flat tables buy —
/// D1 fires on it exactly as on the scheduler-shaped map above.
struct HashIndexedStore {
    index: std::collections::HashMap<u64, usize>, // VIOLATION
}
