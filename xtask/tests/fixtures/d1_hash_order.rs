//! D1 fixture: hash-ordered collections in a simulation-path crate.
//! Linted as crate `besst-core` by `tests/lint_rules.rs`; never compiled.

use std::collections::HashMap; // VIOLATION line 4
use std::collections::BTreeMap; // ok

fn per_component_counts() {
    let mut counts: HashMap<u32, u64> = HashMap::new(); // VIOLATION line 8 (two matches)
    counts.insert(1, 2);

    // lint: allow(hash-order) -- counts are drained into a sorted Vec
    // before anything observable reads them.
    let justified: std::collections::HashSet<u32> = Default::default();
    let _ = (counts, justified);

    // "HashMap" in a string and HashMap in this comment must not fire.
    let _doc = "HashMap iteration order";

    let _ordered: BTreeMap<u32, u64> = BTreeMap::new();
}

// ── Scheduler-shaped cases ─────────────────────────────────────────────

struct HashedScheduler {
    // An event queue keyed by hash order would make pop order depend on
    // RandomState — exactly the trajectory break D1 exists to catch.
    pending: std::collections::HashMap<u64, u32>, // VIOLATION
}

fn recycle_slots(s: &mut HashedScheduler) {
    for (_key, _slot) in s.pending.drain() {}
    // lint: allow(hash-order) -- free-slot membership only; slots are
    // generation-checked before reuse, so iteration order is unobservable.
    let _free: std::collections::HashSet<u32> = Default::default();
}
