//! D2 fixture: ambient nondeterminism outside bench/experiments.
//! Linted as crate `besst-des` by `tests/lint_rules.rs`; never compiled.

fn sources_of_nondeterminism() {
    let _t = std::time::Instant::now(); // VIOLATION line 5
    let _w = std::time::SystemTime::now(); // VIOLATION line 6
    let _r = rand::thread_rng(); // VIOLATION line 7

    // lint: allow(nondet) -- wall-clock used only for a progress message,
    // never fed into simulated state.
    let _progress = std::time::Instant::now();

    // Seeded randomness is the sanctioned path:
    let _rng = SplitMix64::new(0xBE57);
    let _msg = "Instant::now in a string is fine";
}
