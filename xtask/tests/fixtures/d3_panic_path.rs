//! D3 fixture: panic paths in a library crate with typed errors.
//! Linted as crate `besst-fti` (has_typed_errors) by `tests/lint_rules.rs`.

pub enum FixtureError { Bad }

pub fn decode(x: Option<u32>) -> u32 {
    x.unwrap() // VIOLATION line 7
}

pub fn parse(x: Result<u32, FixtureError>) -> u32 {
    x.expect("must parse") // VIOLATION line 11
}

pub fn fail() {
    panic!("boom"); // VIOLATION line 15
}

pub fn justified(x: Option<u32>) -> u32 {
    // lint: allow(panic-path) -- index is bounds-checked two lines up.
    x.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v: Option<u32> = Some(1);
        v.unwrap();
    }
}
