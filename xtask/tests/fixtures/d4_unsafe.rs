//! D4 fixture: `unsafe` without a `// SAFETY:` comment.
//! Linted as crate `besst-analytic` by `tests/lint_rules.rs`; never compiled.

pub fn undocumented(ptr: *const u32) -> u32 {
    unsafe { *ptr } // VIOLATION line 5
}

pub fn documented(ptr: *const u32) -> u32 {
    // SAFETY: caller guarantees `ptr` is valid and aligned for the whole
    // call (checked by the arena allocator that produced it).
    unsafe { *ptr }
}

pub fn string_mention() {
    let _ = "unsafe in a string must not fire";
    // and unsafe in a comment must not fire either
}
