//! D5 fixture: float comparison on timestamps / `partial_cmp` on the
//! simulation path. Linted as crate `besst-core` by `tests/lint_rules.rs`.

pub fn float_time_equality(t: SimTime, end: f64) -> bool {
    t.as_secs_f64() == end // VIOLATION line 5
}

pub fn sorts(mut v: Vec<(f64, u32)>) {
    v.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap()); // VIOLATION line 9
}

pub fn justified(mut v: Vec<(f64, u32)>) {
    // lint: allow(float-cmp) -- inputs proven finite by the caller's
    // validation pass; ordering feeds a report, not the trajectory.
    v.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
}

pub fn sanctioned(mut v: Vec<(f64, u32)>) {
    v.sort_by(|a, b| a.0.total_cmp(&b.0)); // ok: total order
}

impl PartialOrd for Wrapper {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> { // ok: impl
        Some(self.cmp(other))
    }
}

// ── Scheduler-shaped cases ─────────────────────────────────────────────

pub fn same_instant_batch(top: SimTime, next: SimTime) -> bool {
    // Batch extraction must compare integer SimTime, never float seconds.
    top.as_secs_f64() == next.as_secs_f64() // VIOLATION
}

pub fn order_heap_nodes(mut nodes: Vec<(f64, u64)>) {
    nodes.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap()); // VIOLATION
}

pub fn order_heap_nodes_integer(mut nodes: Vec<(u64, u64)>) {
    nodes.sort(); // ok: the real scheduler orders integer keys
}
