//! D6 fixture: unbounded blocking reads and queue growth, shaped like a
//! connection handler. Linted under the `besst-serve` persona only —
//! this file is never compiled.

fn handle(stream: std::net::TcpStream) {
    let mut reader = std::io::BufReader::new(stream);
    let mut line = String::new();
    let _ = reader.read_line(&mut line); // a hostile client never sends '\n'
    let mut body = Vec::new();
    let _ = reader.read_to_end(&mut body);
}

fn slurp(mut stream: std::net::TcpStream) -> String {
    let mut all = String::new();
    let _ = stream.read_to_string(&mut all);
    all
}

fn fan_in() {
    let (tx, rx) = crossbeam::channel::unbounded();
    let _ = tx.send(1);
    drop(rx);
}

fn drain_trusted(file: std::fs::File) -> String {
    let mut all = String::new();
    // lint: allow(unbounded-wait) -- local config file, written by us,
    // read once at startup before any client is accepted
    let _ = std::io::Read::read_to_string(&mut { file }, &mut all);
    all
}
