//! D7 fixture: banned APIs laundered behind helpers reachable from an
//! `on_event` dispatch root. Linted with a `besst-serve` persona — off
//! the sim path and nondet-tolerated per-line, so neither D1 nor D2
//! fires on these lines; only reachability catches them.

use std::collections::HashMap as Map;

pub fn on_event() {
    helper();
    justified();
    cold();
}

fn helper() {
    let m: Map<u32, u32> = Map::new();
    deeper(m.len());
}

fn deeper(_n: usize) {
    let t = std::time::Instant::now();
    let _ = t;
}

fn justified() {
    // lint: allow(sim-reach) -- fixture: scratch map, drained in sorted order
    let m = std::collections::HashMap::<u32, u32>::new();
    let _ = m;
}

// Banned but unreachable from any dispatch root: D7 must stay silent.
fn island() {
    let t = std::time::Instant::now();
    let _ = t;
}

fn cold() {
    flat_scan();
    hash_index();
}

// ── Flat-table shapes ──────────────────────────────────────────────────

// The SoA component store's iteration surface — contiguous state slices
// walked by CSR offsets. Reachable from the dispatch root and entirely
// deterministic: D7 must stay silent on every line here.
fn flat_scan() {
    let states: Vec<u64> = vec![0; 8];
    let offsets: [usize; 3] = [0, 4, 8];
    for w in offsets.windows(2) {
        for s in &states[w[0]..w[1]] {
            let _ = *s;
        }
    }
}

// A hash-keyed component index reachable from the same root: the exact
// shape the flat store replaces, and one D7 must still catch even though
// this crate persona tolerates it per-line.
fn hash_index() {
    let idx = std::collections::HashMap::<u32, usize>::new(); // VIOLATION
    let _ = idx.len();
}
