//! D7 fixture: banned APIs laundered behind helpers reachable from an
//! `on_event` dispatch root. Linted with a `besst-serve` persona — off
//! the sim path and nondet-tolerated per-line, so neither D1 nor D2
//! fires on these lines; only reachability catches them.

use std::collections::HashMap as Map;

pub fn on_event() {
    helper();
    justified();
    cold();
}

fn helper() {
    let m: Map<u32, u32> = Map::new();
    deeper(m.len());
}

fn deeper(_n: usize) {
    let t = std::time::Instant::now();
    let _ = t;
}

fn justified() {
    // lint: allow(sim-reach) -- fixture: scratch map, drained in sorted order
    let m = std::collections::HashMap::<u32, u32>::new();
    let _ = m;
}

// Banned but unreachable from any dispatch root: D7 must stay silent.
fn island() {
    let t = std::time::Instant::now();
    let _ = t;
}

fn cold() {}
