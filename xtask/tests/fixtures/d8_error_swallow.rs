//! D8 fixture: swallowed `Result`s in library code of a typed-error
//! crate, one justified swallow, and the consumed shapes the rule must
//! not flag.

pub fn respond(stream: &mut TcpStream) {
    let _ = stream.write(b"ok");
    flush_logs().ok();
    // lint: allow(error-swallow) -- fixture: peer may already be gone
    let _ = stream.write(b"bye");
    let n = stream.write(b"counted").ok();
    drop(n);
    if save().is_ok() {
        return;
    }
}
