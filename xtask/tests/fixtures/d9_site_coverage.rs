//! D9 fixture: a miniature fault-site catalog exercising one healthy
//! site and every deficiency class the audit reports.

pub mod sites {
    /// Healthy: registered, hooked, preset-covered.
    pub const GOOD: u64 = 0x1;
    /// Registered and hooked, but no preset sets its probability.
    pub const ORPHAN: u64 = 0x2;
    /// Registered and preset-covered, but no reachable hook.
    pub const DEAD: u64 = 0x3;
    /// Hooked and covered, but missing from `ALL`.
    pub const UNLISTED: u64 = 0x4;
    // lint: allow(site-coverage) -- fixture: a justified deficiency
    pub const JUSTIFIED: u64 = 0x5;

    /// The registry; `GHOST` names no constant.
    pub const ALL: [(u64, &str); 5] = [
        (GOOD, "good"),
        (ORPHAN, "orphan"),
        (DEAD, "dead"),
        (JUSTIFIED, "justified"),
        (GHOST, "ghost"),
    ];
}

pub struct FaultConfig {
    pub good_p: f64,
    pub orphan_p: f64,
    pub dead_p: f64,
    pub unlisted_p: f64,
}

impl FaultConfig {
    pub fn off() -> FaultConfig {
        FaultConfig { good_p: 0.0, orphan_p: 0.0, dead_p: 0.0, unlisted_p: 0.0 }
    }

    pub fn calm() -> FaultConfig {
        FaultConfig {
            good_p: 0.5,
            dead_p: 0.25,
            unlisted_p: 0.1,
            ..FaultConfig::off()
        }
    }

    pub fn probability(&self, site: u64) -> f64 {
        match site {
            sites::GOOD => self.good_p,
            sites::ORPHAN => self.orphan_p,
            sites::DEAD => self.dead_p,
            sites::UNLISTED => self.unlisted_p,
            _ => 0.0,
        }
    }

    pub fn config(preset: u64) -> FaultConfig {
        match preset {
            0 => FaultConfig::off(),
            _ => FaultConfig::calm(),
        }
    }
}

pub fn on_event(inj: &FaultInjector) {
    inj.fires(sites::GOOD, 0, 0);
    inj.fires(sites::ORPHAN, 0, 0);
    inj.fires(sites::UNLISTED, 0, 0);
}
