//! A1 fixture: one allow that still suppresses a finding, one stale
//! allow, and one naming an unknown rule key.

pub fn observe() {
    // lint: allow(hash-order) -- fixture: drained into a Vec and sorted
    let m: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    let n = m.len();
    // lint: allow(nondet) -- fixture: stale, nothing nondeterministic left
    let x = n + 1;
    // lint: allow(no-such-rule) -- fixture: unknown key
    let y = x + 1;
    drop(y);
}
