//! The `--format json` contract: the `besst-lint-json-v1` document
//! parses with the workspace's own JSON parser, matches the schema, and
//! is byte-identical across runs (the CI diff gate `cmp`s two runs);
//! plus the 0/1/2 exit-code contract CI keys off.

use besst_serve::json::{self, Value};
use std::path::{Path, PathBuf};
use xtask::rules::{Finding, Rule};
use xtask::workspace::find_root;
use xtask::{findings_to_json, lint_exit_code, lint_workspace, LintError};

/// Two findings with every character class the escaper must handle.
fn sample() -> Vec<Finding> {
    vec![
        Finding {
            rule: Rule::HashOrder,
            file: PathBuf::from("crates/core/src/lib.rs"),
            line: 3,
            col: 7,
            what: "iteration order of `HashMap` leaks \"entropy\"".to_string(),
            hint: "use a BTreeMap\nor sort before iterating \\ hashing".to_string(),
        },
        Finding {
            rule: Rule::SimReach,
            file: PathBuf::from("crates/models/src/lib.rs"),
            line: 40,
            col: 1,
            what: "`Instant::now` is reachable: `run` → `step`".to_string(),
            hint: "seed it".to_string(),
        },
    ]
}

fn obj(v: &Value) -> &std::collections::BTreeMap<String, Value> {
    v.as_obj().expect("object")
}

fn arr(v: &Value) -> &[Value] {
    match v {
        Value::Arr(a) => a,
        other => panic!("expected array, got {other:?}"),
    }
}

#[test]
fn document_parses_and_matches_the_schema() {
    let doc = findings_to_json(&sample());
    let v = json::parse(&doc).expect("besst-lint JSON parses with the besst parser");
    let top = obj(&v);
    assert_eq!(top["schema"].as_str(), Some("besst-lint-json-v1"));

    // The rule catalog rides along, in catalog order.
    let rules = arr(&top["rules"]);
    assert_eq!(rules.len(), Rule::ALL.len());
    assert_eq!(rules[0].as_str(), Some("D1/hash-order"));
    assert_eq!(rules[9].as_str(), Some("A1/stale-allow"));

    assert_eq!(top["total"].as_u64(), Some(2));
    let by_rule = obj(&top["by_rule"]);
    assert_eq!(by_rule["D1/hash-order"].as_u64(), Some(1));
    assert_eq!(by_rule["D7/sim-reach"].as_u64(), Some(1));

    let findings = arr(&top["findings"]);
    assert_eq!(findings.len(), 2);
    let f0 = obj(&findings[0]);
    assert_eq!(f0["rule"].as_str(), Some("D1/hash-order"));
    assert_eq!(f0["file"].as_str(), Some("crates/core/src/lib.rs"));
    assert_eq!(f0["line"].as_u64(), Some(3));
    assert_eq!(f0["col"].as_u64(), Some(7));
    // Quotes, backslashes, newlines, and non-ASCII survive the round-trip.
    assert_eq!(f0["what"].as_str(), Some("iteration order of `HashMap` leaks \"entropy\""));
    assert_eq!(f0["hint"].as_str(), Some("use a BTreeMap\nor sort before iterating \\ hashing"));
    assert_eq!(obj(&findings[1])["what"].as_str(), Some("`Instant::now` is reachable: `run` → `step`"));
}

#[test]
fn empty_document_is_well_formed() {
    let doc = findings_to_json(&[]);
    let v = json::parse(&doc).expect("empty document parses");
    let top = obj(&v);
    assert_eq!(top["total"].as_u64(), Some(0));
    assert!(obj(&top["by_rule"]).is_empty());
    assert!(arr(&top["findings"]).is_empty());
    assert!(doc.ends_with("}\n"), "document ends with a newline for cmp/diff");
}

#[test]
fn rendering_is_byte_deterministic() {
    assert_eq!(findings_to_json(&sample()), findings_to_json(&sample()));
}

/// Two full workspace passes must serialize byte-identically — the exact
/// property the CI lint job checks by `cmp`ing two runs.
#[test]
fn workspace_json_is_byte_identical_across_runs() {
    let root = find_root(&PathBuf::from(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    let a = lint_workspace(&root).expect("first pass");
    let b = lint_workspace(&root).expect("second pass");
    assert_eq!(findings_to_json(&a), findings_to_json(&b));
}

#[test]
fn exit_codes_follow_the_contract() {
    assert_eq!(lint_exit_code(&Ok(Vec::new())), 0, "clean tree");
    assert_eq!(lint_exit_code(&Ok(sample())), 1, "findings");
    assert_eq!(lint_exit_code(&Err(LintError::Manifest("broken".into()))), 2, "internal error");
    // End-to-end: a root without a workspace manifest is the linter's
    // failure to run, not a clean result.
    let outcome = lint_workspace(Path::new("/nonexistent-besst-root"));
    assert!(matches!(outcome, Err(LintError::Manifest(_))), "{outcome:?}");
    assert_eq!(lint_exit_code(&outcome), 2);
}
