//! besst-lint acceptance tests: every rule catches its seeded fixture
//! violations with exact file:line diagnostics, every `// lint: allow(…)`
//! justification suppresses its site, and the workspace as merged is clean.
//!
//! The fixtures under `tests/fixtures/` are deliberate violations; the
//! workspace walker excludes any `fixtures` directory, so these files are
//! linted only here, with a synthetic [`FileContext`] selecting the crate
//! persona each rule needs.

use std::path::PathBuf;
use xtask::rules::{lint_source, FileContext, Rule};
use xtask::workspace::{find_root, CrateKind};

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

fn ctx(crate_name: &str, kind: CrateKind, has_typed_errors: bool, file: &str) -> FileContext {
    FileContext {
        crate_name: crate_name.to_string(),
        kind,
        has_typed_errors,
        path: PathBuf::from("xtask/tests/fixtures").join(file),
    }
}

/// (rule, line) pairs of the findings, sorted.
fn hits(findings: &[xtask::rules::Finding]) -> Vec<(Rule, usize)> {
    let mut v: Vec<(Rule, usize)> = findings.iter().map(|f| (f.rule, f.line)).collect();
    v.sort_by_key(|&(_, l)| l);
    v
}

#[test]
fn d1_hash_order_fixture() {
    let c = ctx("besst-core", CrateKind::Lib, false, "d1_hash_order.rs");
    let f = lint_source(&c, &fixture("d1_hash_order.rs"));
    assert_eq!(
        hits(&f),
        vec![(Rule::HashOrder, 4), (Rule::HashOrder, 8), (Rule::HashOrder, 27)],
        "expected the two seeded HashMap violations plus the \
         scheduler-shaped pending map: {f:#?}"
    );
    // Diagnostics carry the file path for file:line reporting.
    assert!(f[0].to_string().contains("d1_hash_order.rs:4:"));
    assert!(f[0].to_string().contains("BTreeMap"), "hint names the fix");
}

#[test]
fn d2_nondet_fixture() {
    let c = ctx("besst-des", CrateKind::Lib, false, "d2_nondet.rs");
    let f = lint_source(&c, &fixture("d2_nondet.rs"));
    assert_eq!(
        hits(&f),
        vec![(Rule::Nondet, 5), (Rule::Nondet, 6), (Rule::Nondet, 7)],
        "expected Instant/SystemTime/thread_rng violations: {f:#?}"
    );
    // The same file linted as an experiments target is clean: wall-clock
    // campaign timing is that crate's business.
    let c = ctx("besst-experiments", CrateKind::Bin, false, "d2_nondet.rs");
    assert!(lint_source(&c, &fixture("d2_nondet.rs")).is_empty());
}

#[test]
fn d3_panic_path_fixture() {
    let c = ctx("besst-fti", CrateKind::Lib, true, "d3_panic_path.rs");
    let f = lint_source(&c, &fixture("d3_panic_path.rs"));
    assert_eq!(
        hits(&f),
        vec![(Rule::PanicPath, 7), (Rule::PanicPath, 11), (Rule::PanicPath, 15)],
        "expected unwrap/expect/panic! violations outside tests: {f:#?}"
    );
    // Without typed errors the rule is silent (nothing better to return).
    let c = ctx("besst-machine", CrateKind::Lib, false, "d3_panic_path.rs");
    assert!(lint_source(&c, &fixture("d3_panic_path.rs")).is_empty());
    // Test targets may unwrap freely.
    let c = ctx("besst-fti", CrateKind::Test, true, "d3_panic_path.rs");
    assert!(lint_source(&c, &fixture("d3_panic_path.rs")).is_empty());
}

#[test]
fn d4_unsafe_fixture() {
    let c = ctx("besst-analytic", CrateKind::Lib, false, "d4_unsafe.rs");
    let f = lint_source(&c, &fixture("d4_unsafe.rs"));
    assert_eq!(
        hits(&f),
        vec![(Rule::UndocumentedUnsafe, 5)],
        "expected exactly the undocumented unsafe block: {f:#?}"
    );
    assert!(f[0].to_string().contains("SAFETY"));
}

#[test]
fn d5_float_cmp_fixture() {
    let c = ctx("besst-core", CrateKind::Lib, false, "d5_float_cmp.rs");
    let f = lint_source(&c, &fixture("d5_float_cmp.rs"));
    assert_eq!(
        hits(&f),
        vec![
            (Rule::FloatCmp, 5),
            (Rule::FloatCmp, 9),
            (Rule::FloatCmp, 32),
            (Rule::FloatCmp, 36),
        ],
        "expected the seeded equality/partial_cmp violations plus the \
         scheduler-shaped instant-batch and node-ordering cases: {f:#?}"
    );
    // `besst_des::time` owns the float↔integer boundary and is exempt.
    let c = FileContext {
        crate_name: "besst-des".to_string(),
        kind: CrateKind::Lib,
        has_typed_errors: false,
        path: PathBuf::from("crates/des/src/time.rs"),
    };
    assert!(lint_source(&c, &fixture("d5_float_cmp.rs")).is_empty());
}

#[test]
fn d6_unbounded_wait_fixture() {
    let c = ctx("besst-serve", CrateKind::Lib, true, "d6_unbounded_wait.rs");
    let f = lint_source(&c, &fixture("d6_unbounded_wait.rs"));
    assert_eq!(
        hits(&f),
        vec![
            (Rule::UnboundedWait, 8),
            (Rule::UnboundedWait, 10),
            (Rule::UnboundedWait, 15),
            (Rule::UnboundedWait, 20),
        ],
        "expected the read_line/read_to_end/read_to_string/unbounded \
         violations, with the justified startup read suppressed: {f:#?}"
    );
    assert!(f[0].to_string().contains("d6_unbounded_wait.rs:8:"));
    assert!(f[0].to_string().contains("MAX_LINE_BYTES"), "hint names the fix");
    // Any other crate may buffer freely — xtask itself reads whole files.
    let c = ctx("xtask", CrateKind::Lib, false, "d6_unbounded_wait.rs");
    assert!(lint_source(&c, &fixture("d6_unbounded_wait.rs")).is_empty());
}

/// The acceptance gate: the tree as merged has zero findings. Any new
/// violation of D1–D6 anywhere in the workspace fails this test with the
/// full rustc-style diagnostic, not just in the CI lint job.
#[test]
fn workspace_is_clean() {
    let root = find_root(&PathBuf::from(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    let findings = xtask::lint_workspace(&root);
    assert!(
        findings.is_empty(),
        "besst-lint found {} violation(s):\n{}",
        findings.len(),
        findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n\n")
    );
}
