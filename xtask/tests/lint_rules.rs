//! besst-lint acceptance tests: every rule catches its seeded fixture
//! violations with exact file:line diagnostics, every `// lint: allow(…)`
//! justification suppresses its site, and the workspace as merged is clean.
//!
//! The fixtures under `tests/fixtures/` are deliberate violations; the
//! workspace walker excludes any `fixtures` directory, so these files are
//! linted only here, with a synthetic [`FileContext`] selecting the crate
//! persona each rule needs.

use std::collections::BTreeMap;
use std::path::PathBuf;
use xtask::callgraph::{parse_site_catalog, scan_file, CallGraph};
use xtask::lexer::lex;
use xtask::rules::{
    analyze_lines, check_sim_reach, check_site_coverage, lint_source, stale_allow_findings,
    FileContext, Rule,
};
use xtask::workspace::{find_root, CrateKind};

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

fn ctx(crate_name: &str, kind: CrateKind, has_typed_errors: bool, file: &str) -> FileContext {
    FileContext {
        crate_name: crate_name.to_string(),
        kind,
        has_typed_errors,
        path: PathBuf::from("xtask/tests/fixtures").join(file),
    }
}

/// (rule, line) pairs of the findings, sorted.
fn hits(findings: &[xtask::rules::Finding]) -> Vec<(Rule, usize)> {
    let mut v: Vec<(Rule, usize)> = findings.iter().map(|f| (f.rule, f.line)).collect();
    v.sort_by_key(|&(_, l)| l);
    v
}

#[test]
fn d1_hash_order_fixture() {
    let c = ctx("besst-core", CrateKind::Lib, false, "d1_hash_order.rs");
    let f = lint_source(&c, &fixture("d1_hash_order.rs"));
    assert_eq!(
        hits(&f),
        vec![
            (Rule::HashOrder, 4),
            (Rule::HashOrder, 8),
            (Rule::HashOrder, 27),
            (Rule::HashOrder, 61),
        ],
        "expected the two seeded HashMap violations, the scheduler-shaped \
         pending map, and the hash-keyed store index — with the flat-table \
         iteration block staying silent: {f:#?}"
    );
    // Diagnostics carry the file path for file:line reporting.
    assert!(f[0].to_string().contains("d1_hash_order.rs:4:"));
    assert!(f[0].to_string().contains("BTreeMap"), "hint names the fix");
}

#[test]
fn d2_nondet_fixture() {
    let c = ctx("besst-des", CrateKind::Lib, false, "d2_nondet.rs");
    let f = lint_source(&c, &fixture("d2_nondet.rs"));
    assert_eq!(
        hits(&f),
        vec![(Rule::Nondet, 5), (Rule::Nondet, 6), (Rule::Nondet, 7)],
        "expected Instant/SystemTime/thread_rng violations: {f:#?}"
    );
    // The same file linted as an experiments target is clean: wall-clock
    // campaign timing is that crate's business.
    let c = ctx("besst-experiments", CrateKind::Bin, false, "d2_nondet.rs");
    assert!(lint_source(&c, &fixture("d2_nondet.rs")).is_empty());
}

#[test]
fn d3_panic_path_fixture() {
    let c = ctx("besst-fti", CrateKind::Lib, true, "d3_panic_path.rs");
    let f = lint_source(&c, &fixture("d3_panic_path.rs"));
    assert_eq!(
        hits(&f),
        vec![(Rule::PanicPath, 7), (Rule::PanicPath, 11), (Rule::PanicPath, 15)],
        "expected unwrap/expect/panic! violations outside tests: {f:#?}"
    );
    // Without typed errors the rule is silent (nothing better to return).
    let c = ctx("besst-machine", CrateKind::Lib, false, "d3_panic_path.rs");
    assert!(lint_source(&c, &fixture("d3_panic_path.rs")).is_empty());
    // Test targets may unwrap freely.
    let c = ctx("besst-fti", CrateKind::Test, true, "d3_panic_path.rs");
    assert!(lint_source(&c, &fixture("d3_panic_path.rs")).is_empty());
}

#[test]
fn d4_unsafe_fixture() {
    let c = ctx("besst-analytic", CrateKind::Lib, false, "d4_unsafe.rs");
    let f = lint_source(&c, &fixture("d4_unsafe.rs"));
    assert_eq!(
        hits(&f),
        vec![(Rule::UndocumentedUnsafe, 5)],
        "expected exactly the undocumented unsafe block: {f:#?}"
    );
    assert!(f[0].to_string().contains("SAFETY"));
}

#[test]
fn d5_float_cmp_fixture() {
    let c = ctx("besst-core", CrateKind::Lib, false, "d5_float_cmp.rs");
    let f = lint_source(&c, &fixture("d5_float_cmp.rs"));
    assert_eq!(
        hits(&f),
        vec![
            (Rule::FloatCmp, 5),
            (Rule::FloatCmp, 9),
            (Rule::FloatCmp, 32),
            (Rule::FloatCmp, 36),
        ],
        "expected the seeded equality/partial_cmp violations plus the \
         scheduler-shaped instant-batch and node-ordering cases: {f:#?}"
    );
    // `besst_des::time` owns the float↔integer boundary and is exempt.
    let c = FileContext {
        crate_name: "besst-des".to_string(),
        kind: CrateKind::Lib,
        has_typed_errors: false,
        path: PathBuf::from("crates/des/src/time.rs"),
    };
    assert!(lint_source(&c, &fixture("d5_float_cmp.rs")).is_empty());
}

#[test]
fn d6_unbounded_wait_fixture() {
    // Linted without typed errors so D8 stays out of a D6-only fixture.
    let c = ctx("besst-serve", CrateKind::Lib, false, "d6_unbounded_wait.rs");
    let f = lint_source(&c, &fixture("d6_unbounded_wait.rs"));
    assert_eq!(
        hits(&f),
        vec![
            (Rule::UnboundedWait, 8),
            (Rule::UnboundedWait, 10),
            (Rule::UnboundedWait, 15),
            (Rule::UnboundedWait, 20),
        ],
        "expected the read_line/read_to_end/read_to_string/unbounded \
         violations, with the justified startup read suppressed: {f:#?}"
    );
    assert!(f[0].to_string().contains("d6_unbounded_wait.rs:8:"));
    assert!(f[0].to_string().contains("MAX_LINE_BYTES"), "hint names the fix");
    // Any other crate may buffer freely — xtask itself reads whole files.
    let c = ctx("xtask", CrateKind::Lib, false, "d6_unbounded_wait.rs");
    assert!(lint_source(&c, &fixture("d6_unbounded_wait.rs")).is_empty());
}

/// A single-crate call graph over one fixture file, for the workspace
/// rules (D7/D9) that need reachability rather than per-line scanning.
fn fixture_graph(c: &FileContext, source: &str) -> CallGraph {
    let mut deps = BTreeMap::new();
    deps.insert(c.crate_name.clone(), Vec::new());
    CallGraph::build(vec![scan_file(c, &lex(source))], &deps)
}

#[test]
fn d7_sim_reach_fixture() {
    // besst-serve is off the sim path and nondet-tolerated per-line, so
    // neither D1 nor D2 fires on this file — the laundering hole D7 closes.
    let c = ctx("besst-serve", CrateKind::Lib, false, "d7_sim_reach.rs");
    let graph = fixture_graph(&c, &fixture("d7_sim_reach.rs"));
    let (f, used) = check_sim_reach(&graph);
    assert_eq!(
        hits(&f),
        vec![(Rule::SimReach, 15), (Rule::SimReach, 20), (Rule::SimReach, 60)],
        "expected the aliased HashMap, the laundered Instant::now, and the \
         hash-keyed store index behind `cold` — with the justified use \
         suppressed, the unreachable `island` ignored, and the flat-table \
         `flat_scan` staying silent: {f:#?}"
    );
    // The diagnostic names the alias and walks the chain back to the root.
    assert!(f[0].what.contains("aliased as `Map`"), "{}", f[0].what);
    assert!(f[0].what.contains("on_event"), "chain reaches the root: {}", f[0].what);
    assert!(f[1].what.contains("Instant::now"), "{}", f[1].what);
    // The justified use marks its allow site used (0-based line 24).
    assert_eq!(used, vec![(c.path.clone(), 24)]);
}

#[test]
fn d8_error_swallow_fixture() {
    let c = ctx("besst-serve", CrateKind::Lib, true, "d8_error_swallow.rs");
    let f = lint_source(&c, &fixture("d8_error_swallow.rs"));
    assert_eq!(
        hits(&f),
        vec![(Rule::ErrorSwallow, 6), (Rule::ErrorSwallow, 7)],
        "expected the `let _ =` and statement-position `.ok()` swallows, \
         with the justified swallow suppressed and the consumed `.ok()` \
         value untouched: {f:#?}"
    );
    assert!(f[0].to_string().contains("d8_error_swallow.rs:6:"));
    // Without typed errors there is nothing better to propagate.
    let c = ctx("besst-serve", CrateKind::Lib, false, "d8_error_swallow.rs");
    assert!(lint_source(&c, &fixture("d8_error_swallow.rs")).is_empty());
    // Test targets may swallow freely.
    let c = ctx("besst-serve", CrateKind::Test, true, "d8_error_swallow.rs");
    assert!(lint_source(&c, &fixture("d8_error_swallow.rs")).is_empty());
}

#[test]
fn d9_site_coverage_fixture() {
    let c = ctx("besst-des", CrateKind::Lib, false, "d9_site_coverage.rs");
    let lines = lex(&fixture("d9_site_coverage.rs"));
    let facts = scan_file(&c, &lines);
    let cat = parse_site_catalog(&lines, &facts);
    let mut deps = BTreeMap::new();
    deps.insert(c.crate_name.clone(), Vec::new());
    let graph = CallGraph::build(vec![facts], &deps);
    let (f, statuses, used) = check_site_coverage(&graph, &cat, &c.path);
    assert_eq!(
        hits(&f),
        vec![
            (Rule::SiteCoverage, 8),  // ORPHAN: no preset
            (Rule::SiteCoverage, 10), // DEAD: no reachable hook
            (Rule::SiteCoverage, 12), // UNLISTED: not in sites::ALL
            (Rule::SiteCoverage, 22), // GHOST: registered but no constant
        ],
        "one finding per deficiency class: {f:#?}"
    );
    assert!(f[0].what.contains("no `FaultPreset`"), "{}", f[0].what);
    assert!(f[1].what.contains("no hook call site"), "{}", f[1].what);
    assert!(f[2].what.contains("not registered"), "{}", f[2].what);
    assert!(f[3].what.contains("GHOST"), "{}", f[3].what);

    // The status table records the full audit, healthy sites included.
    let by_name: BTreeMap<&str, _> = statuses.iter().map(|s| (s.name.as_str(), s)).collect();
    assert_eq!(by_name.len(), 5, "{statuses:#?}");
    let good = by_name["GOOD"];
    assert!(good.registered && !good.hooks.is_empty(), "{good:#?}");
    assert_eq!(good.presets, vec!["calm".to_string()], "{good:#?}");
    assert!(by_name["JUSTIFIED"].allowed, "{statuses:#?}");
    // The justified site marks its allow used (0-based line 12).
    assert_eq!(used, vec![(c.path.clone(), 12)]);
}

#[test]
fn stale_allow_fixture() {
    let c = ctx("besst-core", CrateKind::Lib, false, "stale_allow.rs");
    let a = analyze_lines(&c, &lex(&fixture("stale_allow.rs")));
    assert!(
        a.findings.is_empty(),
        "the hash-order allow suppresses the only finding: {:#?}",
        a.findings
    );
    let f = stale_allow_findings(&c.path, &a.allows);
    assert_eq!(
        hits(&f),
        vec![(Rule::StaleAllow, 8), (Rule::StaleAllow, 10)],
        "expected the stale nondet allow and the unknown key, with the \
         used hash-order allow exempt: {f:#?}"
    );
    assert!(f[0].what.contains("no longer suppresses"), "{}", f[0].what);
    assert!(f[1].what.contains("unknown rule key"), "{}", f[1].what);
    assert!(f[1].hint.contains("hash-order"), "hint lists known keys: {}", f[1].hint);
}

/// D9 acceptance on the real tree: every fault site in the buggify
/// catalog is registered, and every site is either hooked on a reachable
/// path *and* covered by a preset, or carries a justification (only
/// `NODE_REPAIR`, which rides every `NODE_CRASH` decision).
#[test]
fn fault_site_catalog_is_fully_covered() {
    let root = find_root(&PathBuf::from(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    let analysis = xtask::analyze_workspace(&root).expect("linter ran");
    assert_eq!(analysis.sites.len(), 9, "nine fault sites: {:#?}", analysis.sites);
    for s in &analysis.sites {
        assert!(s.registered, "`{}` must be in `sites::ALL`", s.name);
        if s.name == "NODE_REPAIR" {
            assert!(
                s.allowed && s.presets.is_empty(),
                "NODE_REPAIR has no probability of its own and rides \
                 NODE_CRASH via an allow: {s:#?}"
            );
            continue;
        }
        assert!(!s.hooks.is_empty(), "`{}` needs a reachable hook: {s:#?}", s.name);
        assert!(!s.presets.is_empty(), "`{}` needs a covering preset: {s:#?}", s.name);
    }
}

/// The acceptance gate: the tree as merged has zero findings with all
/// nine rules and the stale-allow audit on. Any new violation anywhere in
/// the workspace fails this test with the full rustc-style diagnostic,
/// not just in the CI lint job.
#[test]
fn workspace_is_clean() {
    let root = find_root(&PathBuf::from(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    let findings = xtask::lint_workspace(&root).expect("linter ran");
    assert!(
        findings.is_empty(),
        "besst-lint found {} violation(s):\n{}",
        findings.len(),
        findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n\n")
    );
}
